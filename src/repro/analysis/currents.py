"""Branch-current extraction from a solved power grid.

Given the node voltages produced by the IR-drop analysis, the current through
every resistive branch follows from Ohm's law, ``I = (V_a - V_b) / R``.
Branch currents feed two consumers:

* the electromigration checker (:mod:`repro.analysis.em`), which compares the
  per-unit-width current density against ``Jmax``; and
* the conventional planner's resizing step, which upsizes lines whose
  segments carry too much current.

All extraction runs on the network's cached
:class:`~repro.grid.compiled.CompiledGrid` arrays: one vectorised Ohm's-law
evaluation replaces the per-branch Python loop, and the per-object
:class:`BranchCurrent` view is only materialised where callers need it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid.compiled import CompiledGrid
from ..grid.elements import Resistor
from ..grid.network import PowerGridNetwork
from .irdrop import IRDropResult


@dataclass(frozen=True)
class BranchCurrent:
    """Current through one resistive branch.

    Attributes:
        resistor: The branch element.
        current: Signed current flowing from ``node_a`` to ``node_b`` in
            amperes.
    """

    resistor: Resistor
    current: float

    @property
    def magnitude(self) -> float:
        """Absolute branch current in amperes."""
        return abs(self.current)

    @property
    def current_density(self) -> float:
        """Current per unit width in A/um; infinite for zero-width branches."""
        if self.resistor.width <= 0:
            return float("inf") if self.magnitude > 0 else 0.0
        return self.magnitude / self.resistor.width


def _compiled_and_voltages(
    network: PowerGridNetwork | CompiledGrid, result: IRDropResult
) -> tuple[CompiledGrid, np.ndarray]:
    compiled = network if isinstance(network, CompiledGrid) else network.compile()
    return compiled, compiled.voltage_array(result.node_voltages)


def branch_current_array(
    network: PowerGridNetwork | CompiledGrid, result: IRDropResult
) -> np.ndarray:
    """Signed per-branch currents, aligned with the compiled resistor order.

    The compiled resistor order is the network's insertion order, so the
    array lines up with ``network.iter_resistors()``.
    """
    compiled, voltages = _compiled_and_voltages(network, result)
    return compiled.branch_current_array(voltages)


def branch_currents(
    network: PowerGridNetwork | CompiledGrid, result: IRDropResult
) -> list[BranchCurrent]:
    """Compute the current through every resistive branch of the grid."""
    compiled, voltages = _compiled_and_voltages(network, result)
    currents = compiled.branch_current_array(voltages)
    return [
        BranchCurrent(resistor=resistor, current=float(current))
        for resistor, current in zip(compiled.resistors, currents)
    ]


def line_currents(
    network: PowerGridNetwork | CompiledGrid, result: IRDropResult
) -> dict[int, float]:
    """Return the maximum segment current of every power-grid line.

    The per-line maximum is the quantity the EM constraint (paper eq. 4)
    limits, since the most loaded segment of a stripe is the one that fails
    first.
    """
    compiled, voltages = _compiled_and_voltages(network, result)
    return line_currents_from_voltages(compiled, voltages)


def line_currents_from_voltages(
    network: PowerGridNetwork | CompiledGrid, voltages: np.ndarray
) -> dict[int, float]:
    """Array-level :func:`line_currents` for callers that hold raw voltages.

    Args:
        network: The grid (or its compiled form).
        voltages: Per-node voltages in compiled node order.
    """
    compiled = network if isinstance(network, CompiledGrid) else network.compile()
    magnitudes = np.abs(compiled.branch_current_array(np.asarray(voltages, dtype=float)))
    on_line = compiled.res_line_id >= 0
    line_ids = compiled.res_line_id[on_line]
    if line_ids.size == 0:
        return {}
    maxima = np.zeros(int(line_ids.max()) + 1, dtype=float)
    np.maximum.at(maxima, line_ids, magnitudes[on_line])
    return {int(line_id): float(maxima[line_id]) for line_id in np.unique(line_ids)}


def pad_currents(
    network: PowerGridNetwork | CompiledGrid, result: IRDropResult
) -> dict[str, float]:
    """Estimate the current delivered by each supply pad.

    The pad current is the net current flowing out of the pad node through
    its resistive branches (plus any load attached directly to the pad node).
    When several pads share a node, the node's current is attributed to the
    last added pad, matching the network's pad-per-node convention.
    """
    compiled, voltages = _compiled_and_voltages(network, result)
    outflow = compiled.node_outflow(compiled.branch_current_array(voltages))

    totals = {name: 0.0 for name in compiled.pad_names}
    pad_name_by_node = dict(zip(compiled.pad_node.tolist(), compiled.pad_names))
    for node, pad_name in pad_name_by_node.items():
        totals[pad_name] = float(outflow[node] + compiled.base_loads[node])
    return totals


def total_dissipated_power(
    network: PowerGridNetwork | CompiledGrid, result: IRDropResult
) -> float:
    """Return the total ohmic power dissipated in the grid wires, in watts."""
    compiled, voltages = _compiled_and_voltages(network, result)
    currents = compiled.branch_current_array(voltages)
    return float(np.sum(currents**2 / compiled.conductance))


def current_conservation_error(
    network: PowerGridNetwork | CompiledGrid, result: IRDropResult
) -> float:
    """Return the worst KCL violation over the non-pad nodes, in amperes.

    A correctly solved grid satisfies Kirchhoff's current law at every
    non-pad node: the resistive currents leaving the node equal the load
    current drawn there.  This is used as a physics-level invariant in the
    test-suite.
    """
    compiled, voltages = _compiled_and_voltages(network, result)
    outflow = compiled.node_outflow(compiled.branch_current_array(voltages))
    net_injection = -outflow - compiled.base_loads
    errors = np.abs(net_injection[~compiled.is_pad])
    return float(errors.max()) if errors.size else 0.0
