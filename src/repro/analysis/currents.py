"""Branch-current extraction from a solved power grid.

Given the node voltages produced by the IR-drop analysis, the current through
every resistive branch follows from Ohm's law, ``I = (V_a - V_b) / R``.
Branch currents feed two consumers:

* the electromigration checker (:mod:`repro.analysis.em`), which compares the
  per-unit-width current density against ``Jmax``; and
* the conventional planner's resizing step, which upsizes lines whose
  segments carry too much current.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid.elements import GROUND_NODE, Resistor
from ..grid.network import PowerGridNetwork
from .irdrop import IRDropResult


@dataclass(frozen=True)
class BranchCurrent:
    """Current through one resistive branch.

    Attributes:
        resistor: The branch element.
        current: Signed current flowing from ``node_a`` to ``node_b`` in
            amperes.
    """

    resistor: Resistor
    current: float

    @property
    def magnitude(self) -> float:
        """Absolute branch current in amperes."""
        return abs(self.current)

    @property
    def current_density(self) -> float:
        """Current per unit width in A/um; infinite for zero-width branches."""
        if self.resistor.width <= 0:
            return float("inf") if self.magnitude > 0 else 0.0
        return self.magnitude / self.resistor.width


def branch_currents(network: PowerGridNetwork, result: IRDropResult) -> list[BranchCurrent]:
    """Compute the current through every resistive branch of the grid."""
    currents: list[BranchCurrent] = []
    voltages = result.node_voltages
    for resistor in network.iter_resistors():
        v_a = 0.0 if resistor.node_a == GROUND_NODE else voltages[resistor.node_a]
        v_b = 0.0 if resistor.node_b == GROUND_NODE else voltages[resistor.node_b]
        currents.append(
            BranchCurrent(resistor=resistor, current=(v_a - v_b) / resistor.resistance)
        )
    return currents


def line_currents(network: PowerGridNetwork, result: IRDropResult) -> dict[int, float]:
    """Return the maximum segment current of every power-grid line.

    The per-line maximum is the quantity the EM constraint (paper eq. 4)
    limits, since the most loaded segment of a stripe is the one that fails
    first.
    """
    maxima: dict[int, float] = {}
    for branch in branch_currents(network, result):
        line_id = branch.resistor.line_id
        if line_id < 0:
            continue
        maxima[line_id] = max(maxima.get(line_id, 0.0), branch.magnitude)
    return maxima


def pad_currents(network: PowerGridNetwork, result: IRDropResult) -> dict[str, float]:
    """Estimate the current delivered by each supply pad.

    The pad current is the net current flowing out of the pad node through
    its resistive branches (plus any load attached directly to the pad node).
    """
    voltages = result.node_voltages
    totals: dict[str, float] = {pad.name: 0.0 for pad in network.iter_pads()}
    pads_by_node = {pad.node: pad.name for pad in network.iter_pads()}
    for resistor in network.iter_resistors():
        for node, other in ((resistor.node_a, resistor.node_b), (resistor.node_b, resistor.node_a)):
            pad_name = pads_by_node.get(node)
            if pad_name is None:
                continue
            v_node = voltages[node]
            v_other = 0.0 if other == GROUND_NODE else voltages[other]
            totals[pad_name] += (v_node - v_other) / resistor.resistance
    loads_by_node = network.load_by_node()
    for node, pad_name in pads_by_node.items():
        totals[pad_name] += loads_by_node.get(node, 0.0)
    return totals


def total_dissipated_power(network: PowerGridNetwork, result: IRDropResult) -> float:
    """Return the total ohmic power dissipated in the grid wires, in watts."""
    power = 0.0
    for branch in branch_currents(network, result):
        power += branch.current**2 * branch.resistor.resistance
    return power


def current_conservation_error(network: PowerGridNetwork, result: IRDropResult) -> float:
    """Return the worst KCL violation over the non-pad nodes, in amperes.

    A correctly solved grid satisfies Kirchhoff's current law at every
    non-pad node: the resistive currents leaving the node equal the load
    current drawn there.  This is used as a physics-level invariant in the
    test-suite.
    """
    voltages = result.node_voltages
    net_injection: dict[str, float] = {name: 0.0 for name in network.nodes}
    for resistor in network.iter_resistors():
        v_a = 0.0 if resistor.node_a == GROUND_NODE else voltages[resistor.node_a]
        v_b = 0.0 if resistor.node_b == GROUND_NODE else voltages[resistor.node_b]
        current = (v_a - v_b) / resistor.resistance
        if resistor.node_a != GROUND_NODE:
            net_injection[resistor.node_a] -= current
        if resistor.node_b != GROUND_NODE:
            net_injection[resistor.node_b] += current
    for load in network.iter_loads():
        net_injection[load.node] -= load.current
    pad_nodes = network.pad_nodes()
    errors = [abs(value) for name, value in net_injection.items() if name not in pad_nodes]
    return max(errors) if errors else 0.0
