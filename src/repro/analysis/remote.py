"""Cross-host sweep execution: HTTP coordinator, workers, RemoteExecutor.

PR-5 made a shard a self-contained unit of work: a pickled
``CompiledGrid`` + engine config + scenario-source range in, a tuple of
reductions + :class:`~repro.analysis.sinks.SinkSnapshot`\\ s out.  The
process-sharded executor ships that unit to local processes; this module
ships the *same* unit over a socket, so a sweep can fan out across worker
processes on any number of hosts — stdlib only (``http.server`` +
``urllib``), no broker dependency.

Three pieces:

* **Coordinator** — a :class:`ThreadingHTTPServer` around a
  :class:`SweepQueue`: clients POST a sweep (payload + shard ranges),
  workers lease shards, solve them and POST results back, clients poll
  the outcome.  Run standing via
  ``python -m repro.analysis.remote coordinator``.
* **Worker** — :func:`run_worker`: an endless pull → solve → report loop.
  Run via ``python -m repro.analysis.remote worker --coordinator URL``.
* **:class:`RemoteExecutor`** — a
  :class:`~repro.analysis.executors.SweepExecutor` that submits the plan
  to a coordinator (``coordinator=`` / :data:`COORDINATOR_ENV`) or, when
  none is configured, hosts an *embedded* coordinator thread plus local
  worker processes for the duration of the sweep — so
  ``make_executor("remote")`` works out of the box and
  ``REPRO_TEST_EXECUTOR=remote`` runs a whole test suite through the
  distributed code path.

Work stealing
-------------

The scenario range is split **finer than equal**: ``workers ×
oversubscribe`` shards (default 4× oversubscription) instead of one per
worker.  Workers *pull* shards one at a time, so a worker that finishes
early immediately takes work a slower peer would otherwise have been
stuck with — on CG-fallback grids, per-scenario iteration counts vary and
equal shards straggle.  No pushing, no rebalancing protocol: pull-based
leasing over fine shards *is* the work-stealing policy.

Failure and retry
-----------------

Every lease carries a deadline (``lease_timeout``).  A worker that dies —
process kill, host loss, network partition — simply never reports; its
lease expires and the shard is handed to the next worker that asks.  A
shard that fails ``max_attempts`` times (worker exceptions count too)
fails the whole sweep with the recorded reason, so a poison shard cannot
requeue forever.  Late results from a worker presumed dead are harmless:
shards are pure functions of their range, so a duplicate completion
overwrites with identical data.  In embedded mode the executor
additionally respawns local workers it finds dead.

Determinism
-----------

Shard results merge in ascending shard order through the
:class:`~repro.analysis.sinks.MergeableSink` protocol — the same fold the
process-sharded executor uses — so the streamed reductions and every
exact sink are bitwise-identical to the sequential sweep at every worker
count, and :class:`~repro.analysis.sinks.QuantileSketchSink` (integer
bucket counts, order-invariant) extends that guarantee to quantiles.
Non-mergeable sinks (P²) are rejected before anything runs.

Security
--------

The protocol ships **pickles over plain HTTP** and the coordinator
unpickles what clients and workers send.  Run it only on trusted,
access-controlled networks (the default bind is localhost); it
authenticates nothing and must never face untrusted peers.

Protocol (all bodies are pickles unless noted)::

    POST /sweeps            {payload, ranges, lease_timeout, max_attempts}
                            -> {"sweep": id}
    GET  /task              -> {"sweep", "task", "begin", "end"} | 204
    GET  /payload/<sweep>   -> raw payload bytes (worker caches per sweep)
    POST /results           {"sweep", "task", "result"}
    POST /errors            {"sweep", "task", "message"}
    GET  /outcome/<sweep>   -> {"done", "error", "results", ...}
                               (a done outcome is collected: the sweep is
                               dropped from the queue once fetched)
    GET  /health            -> b"ok" (text)
    POST /shutdown          -> stops the coordinator
"""

from __future__ import annotations

import argparse
import atexit
import itertools
import multiprocessing as mp
import os
import pickle
import threading
import time
import uuid
from collections import OrderedDict, deque
from typing import TYPE_CHECKING, Callable, Sequence
from urllib import error as _urlerror
from urllib import request as _urlrequest

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .executors import (
    SharedGridPayload,
    SweepExecutor,
    SweepPlan,
    fold_shard_outcomes,
    load_shard_state,
    pickle_sweep_payload,
    require_mergeable_sinks,
    shard_ranges,
    solve_shard_range,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    import numpy as np

    from .engine import BatchReductions

COORDINATOR_ENV = "REPRO_REMOTE_COORDINATOR"
"""Environment variable holding a standing coordinator's base URL.

When set (e.g. ``http://127.0.0.1:8765``), every :class:`RemoteExecutor`
built without an explicit ``coordinator=`` submits its sweeps there —
this is how CI points ``REPRO_TEST_EXECUTOR=remote`` at one coordinator +
worker fleet for a whole test-suite run.  Unset, the executor hosts an
embedded localhost coordinator + local workers per sweep.
"""

REMOTE_WORKERS_ENV = "REPRO_REMOTE_WORKERS"
"""Environment variable sizing the executor's worker hint.

Controls how many local worker processes embedded mode spawns and how
finely the scenario range is sharded (``workers × oversubscribe``).
Unset means ``max(2, os.cpu_count())``.
"""


# ----------------------------------------------------------------------
# Coordinator: sweep queue + HTTP front-end
# ----------------------------------------------------------------------
class _SweepState:
    """One submitted sweep: payload, shard ranges and lease bookkeeping."""

    __slots__ = (
        "sweep_id",
        "payload",
        "ranges",
        "lease_timeout",
        "max_attempts",
        "pending",
        "leases",
        "attempts",
        "results",
        "error",
        "finished_at",
    )

    def __init__(
        self,
        sweep_id: str,
        payload: bytes,
        ranges: Sequence[tuple[int, int]],
        lease_timeout: float,
        max_attempts: int,
    ) -> None:
        self.sweep_id = sweep_id
        self.payload = payload
        self.ranges = [(int(begin), int(end)) for begin, end in ranges]
        self.lease_timeout = float(lease_timeout)
        self.max_attempts = int(max_attempts)
        self.pending: deque[int] = deque(range(len(self.ranges)))
        self.leases: dict[int, float] = {}
        self.attempts = [0] * len(self.ranges)
        self.results: dict[int, tuple] = {}
        self.error: str | None = None
        self.finished_at: float | None = None

    @property
    def done(self) -> bool:
        return self.error is not None or len(self.results) == len(self.ranges)


class SweepQueue:
    """Lease-based shard queue — the coordinator's brain, HTTP-free.

    Thread-safe.  Workers :meth:`lease` one shard at a time (pull-based
    work stealing); a lease that is neither completed nor failed before
    its deadline is requeued for the next worker, and a shard exceeding
    ``max_attempts`` fails the sweep.  Finished sweeps are dropped when
    their outcome is collected (or after ``retention`` seconds if the
    submitting client never returns).

    Args:
        retention: Seconds a *finished* sweep's outcome is kept for an
            absent client before being dropped.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(self, retention: float = 600.0, clock: Callable[[], float] = time.monotonic):
        self._lock = threading.Lock()
        self._sweeps: "OrderedDict[str, _SweepState]" = OrderedDict()  # guarded-by: _lock
        self._retention = float(retention)
        self._clock = clock
        self._counter = itertools.count()
        self._nonce = uuid.uuid4().hex[:8]

    def submit(
        self,
        payload: bytes,
        ranges: Sequence[tuple[int, int]],
        lease_timeout: float = 120.0,
        max_attempts: int = 3,
    ) -> str:
        """Register a sweep; returns its id (unique across restarts)."""
        if not ranges:
            raise ValueError("a sweep needs at least one shard range")
        if lease_timeout <= 0.0:
            raise ValueError("lease_timeout must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        sweep_id = f"{self._nonce}-{next(self._counter)}"
        state = _SweepState(sweep_id, payload, ranges, lease_timeout, max_attempts)
        with self._lock:
            self._sweeps[sweep_id] = state
        return sweep_id

    def payload(self, sweep_id: str) -> bytes:
        """The sweep's pickled worker context (KeyError when unknown)."""
        with self._lock:
            return self._sweeps[sweep_id].payload

    def lease(self) -> dict | None:
        """Hand the oldest pending shard to a worker, or None when idle.

        Expired leases are requeued first, so a single polling worker
        eventually steals every shard a dead peer left behind.
        """
        now = self._clock()
        with self._lock:
            self._expire(now)
            for sweep in self._sweeps.values():
                if sweep.error is not None or not sweep.pending:
                    continue
                task = sweep.pending.popleft()
                sweep.attempts[task] += 1
                sweep.leases[task] = now + sweep.lease_timeout
                begin, end = sweep.ranges[task]
                return {"sweep": sweep.sweep_id, "task": task, "begin": begin, "end": end}
        return None

    def complete(self, sweep_id: str, task: int, result: tuple) -> None:
        """Record a shard result (idempotent; unknown sweeps are ignored).

        A late duplicate from a worker whose lease already expired simply
        overwrites with identical data — shards are pure functions of
        their range.
        """
        with self._lock:
            sweep = self._sweeps.get(sweep_id)
            if sweep is None or sweep.error is not None:
                return
            sweep.leases.pop(task, None)
            sweep.results[task] = result
            if sweep.done and sweep.finished_at is None:
                sweep.finished_at = self._clock()

    def fail(self, sweep_id: str, task: int, message: str) -> None:
        """Record a worker-side shard failure: requeue or fail the sweep."""
        with self._lock:
            sweep = self._sweeps.get(sweep_id)
            if sweep is None:
                return
            sweep.leases.pop(task, None)
            self._requeue(sweep, task, message)

    def outcome(self, sweep_id: str) -> dict:
        """Progress / result of a sweep (KeyError when unknown).

        A done outcome carries either ``results`` (shard index → result
        tuple) or ``error``, and collecting it drops the sweep from the
        queue.  Pending outcomes report completion counters.  Lease
        expiry runs here too, so stragglers surface even while no worker
        is polling.
        """
        now = self._clock()
        with self._lock:
            self._expire(now)
            sweep = self._sweeps[sweep_id]
            if not sweep.done:
                return {
                    "done": False,
                    "completed": len(sweep.results),
                    "total": len(sweep.ranges),
                    "leased": len(sweep.leases),
                }
            del self._sweeps[sweep_id]
            if sweep.error is not None:
                return {"done": True, "error": sweep.error, "results": None}
            return {"done": True, "error": None, "results": dict(sweep.results)}

    def _requeue(self, sweep: _SweepState, task: int, reason: str) -> None:  # requires-lock: _lock
        if task in sweep.results:
            return
        if sweep.attempts[task] >= sweep.max_attempts:
            begin, end = sweep.ranges[task]
            sweep.error = (
                f"shard {task} (scenarios [{begin}, {end})) failed after "
                f"{sweep.attempts[task]} attempts: {reason}"
            )
            if sweep.finished_at is None:
                sweep.finished_at = self._clock()
        else:
            sweep.pending.append(task)

    def _expire(self, now: float) -> None:  # requires-lock: _lock
        """Requeue overdue leases; drop finished sweeps nobody collected."""
        stale = []
        for sweep in self._sweeps.values():
            if sweep.error is not None:
                pass
            else:
                for task, deadline in list(sweep.leases.items()):
                    if deadline <= now:
                        del sweep.leases[task]
                        self._requeue(sweep, task, "lease expired (worker presumed dead)")
            if sweep.finished_at is not None and now - sweep.finished_at > self._retention:
                stale.append(sweep.sweep_id)
        for sweep_id in stale:
            del self._sweeps[sweep_id]


class _CoordinatorHandler(BaseHTTPRequestHandler):
    """Pickle-over-HTTP front-end of a :class:`SweepQueue`.

    Bodies are pickles (see the module docstring's protocol table), which
    is why the coordinator must only ever face trusted peers.
    """

    protocol_version = "HTTP/1.1"
    server: "CoordinatorServer"

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        pass  # per-request logging would swamp sweep-heavy suites

    def _body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length)

    def _send(self, status: int, body: bytes = b"") -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            path = self.path.split("?", 1)[0].rstrip("/")
            if path == "/health":
                self._send(200, b"ok")
            elif path == "/task":
                task = self.server.queue.lease()
                if task is None:
                    self._send(204)
                else:
                    self._send(200, pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))
            elif path.startswith("/payload/"):
                self._send(200, self.server.queue.payload(path.rsplit("/", 1)[1]))
            elif path.startswith("/outcome/"):
                outcome = self.server.queue.outcome(path.rsplit("/", 1)[1])
                self._send(200, pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL))
            else:
                self._send(404)
        except KeyError:
            self._send(404)
        except Exception as exc:  # pragma: no cover - defensive
            self._send(400, f"{type(exc).__name__}: {exc}".encode())

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            path = self.path.rstrip("/")
            body = self._body()
            if path == "/sweeps":
                request = pickle.loads(body)
                sweep_id = self.server.queue.submit(
                    request["payload"],
                    request["ranges"],
                    lease_timeout=request.get("lease_timeout", 120.0),
                    max_attempts=request.get("max_attempts", 3),
                )
                self._send(
                    200, pickle.dumps({"sweep": sweep_id}, protocol=pickle.HIGHEST_PROTOCOL)
                )
            elif path == "/results":
                report = pickle.loads(body)
                self.server.queue.complete(report["sweep"], report["task"], report["result"])
                self._send(200)
            elif path == "/errors":
                report = pickle.loads(body)
                self.server.queue.fail(report["sweep"], report["task"], report["message"])
                self._send(200)
            elif path == "/shutdown":
                self._send(200)
                threading.Thread(target=self.server.shutdown, daemon=True).start()
            else:
                self._send(404)
        except Exception as exc:  # pragma: no cover - defensive
            self._send(400, f"{type(exc).__name__}: {exc}".encode())


class CoordinatorServer(ThreadingHTTPServer):
    """HTTP server owning one :class:`SweepQueue` (daemon request threads)."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], queue: SweepQueue | None = None) -> None:
        super().__init__(address, _CoordinatorHandler)
        self.queue = queue if queue is not None else SweepQueue()

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"


def make_coordinator(host: str = "127.0.0.1", port: int = 0) -> CoordinatorServer:
    """Bind a coordinator server (``port=0`` picks a free port).

    The caller drives it: ``server.serve_forever()`` (typically on a
    thread), ``server.shutdown()`` + ``server.server_close()`` to stop.
    """
    return CoordinatorServer((host, port))


# ----------------------------------------------------------------------
# HTTP client side (executor submissions and workers)
# ----------------------------------------------------------------------
_HTTP_TIMEOUT = 30.0
"""Socket timeout of individual coordinator requests (not sweep runtime)."""


def _request(url: str, data: bytes | None = None, timeout: float = _HTTP_TIMEOUT):
    """One HTTP exchange; returns ``(status, body)``.

    4xx/5xx come back as the status instead of raising; connection-level
    failures (refused, timeout) raise ``OSError`` for the caller's retry
    policy.
    """
    req = _urlrequest.Request(url, data=data, method="POST" if data is not None else "GET")
    try:
        with _urlrequest.urlopen(req, timeout=timeout) as response:
            return response.status, response.read()
    except _urlerror.HTTPError as exc:
        return exc.code, exc.read()


def _evict_shard_state(state: dict) -> None:
    """Drop an evicted payload context, detaching any shared segment.

    Shm-backed states hold numpy arrays viewing the attached segment;
    the views must be freed before the mapping can close, so clear the
    dict first and swallow the ``BufferError`` that stray exports (e.g.
    a result tuple still in flight) would raise — the mapping then
    closes when those exports die.
    """
    segment = state.pop("segment", None)
    state.clear()
    if segment is not None:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - depends on GC timing
            pass


def run_worker(
    coordinator: str,
    poll_interval: float = 0.05,
    idle_timeout: float | None = None,
    unreachable_timeout: float | None = 60.0,
    max_cached_sweeps: int = 4,
    stop: threading.Event | None = None,
) -> int:
    """Pull → solve → report loop against a coordinator; returns exit code.

    Each iteration leases one shard, rebuilds the sweep context from the
    (per-sweep cached) payload, runs the serial chunk pipeline over the
    shard's scenario range and POSTs the result tuple back.  Worker-side
    exceptions are reported to the coordinator (counting against the
    shard's attempts) and the loop continues — one poison shard does not
    kill the worker.

    Args:
        coordinator: Coordinator base URL.
        poll_interval: Sleep between polls while no work is available.
        idle_timeout: Exit 0 after this many idle seconds (None = run
            until stopped — the standing-fleet mode).
        unreachable_timeout: Exit 1 after this many seconds without a
            reachable coordinator (None = retry forever).
        max_cached_sweeps: Payload contexts (grid + factorization) kept
            alive; oldest evicted beyond that.
        stop: Optional event that ends the loop (for in-process workers).
    """
    coordinator = coordinator.rstrip("/")
    cache: "OrderedDict[str, dict]" = OrderedDict()
    idle_since: float | None = None
    unreachable_since: float | None = None
    while stop is None or not stop.is_set():
        try:
            status, body = _request(f"{coordinator}/task")
        except OSError:
            now = time.monotonic()
            unreachable_since = unreachable_since or now
            if unreachable_timeout is not None and now - unreachable_since > unreachable_timeout:
                return 1
            time.sleep(min(1.0, max(poll_interval, 0.1)))
            continue
        unreachable_since = None
        if status != 200:
            now = time.monotonic()
            idle_since = idle_since or now
            if idle_timeout is not None and now - idle_since > idle_timeout:
                return 0
            time.sleep(poll_interval)
            continue
        idle_since = None
        task = pickle.loads(body)
        sweep_id = task["sweep"]
        state = cache.get(sweep_id)
        if state is None:
            try:
                payload_status, payload = _request(f"{coordinator}/payload/{sweep_id}")
            except OSError:
                continue
            if payload_status != 200:
                continue  # sweep failed / was collected while we leased
            try:
                state = load_shard_state(payload)
            except Exception as exc:
                try:
                    _request(
                        f"{coordinator}/errors",
                        data=pickle.dumps(
                            {
                                "sweep": sweep_id,
                                "task": task["task"],
                                "message": f"unloadable payload: {type(exc).__name__}: {exc}",
                            },
                            protocol=pickle.HIGHEST_PROTOCOL,
                        ),
                    )
                except OSError:
                    pass
                continue
            cache[sweep_id] = state
            while len(cache) > max_cached_sweeps:
                _evict_shard_state(cache.popitem(last=False)[1])
        try:
            result = solve_shard_range(state, task["begin"], task["end"])
            report = {"sweep": sweep_id, "task": task["task"], "result": result}
            endpoint = "results"
        except Exception as exc:
            report = {
                "sweep": sweep_id,
                "task": task["task"],
                "message": f"{type(exc).__name__}: {exc}",
            }
            endpoint = "errors"
        try:
            _request(
                f"{coordinator}/{endpoint}",
                data=pickle.dumps(report, protocol=pickle.HIGHEST_PROTOCOL),
            )
        except OSError:
            pass  # lease expiry reassigns the shard
    return 0


def _embedded_worker(coordinator: str, poll_interval: float) -> None:
    """Entry point of the local worker processes embedded mode spawns."""
    run_worker(coordinator, poll_interval=poll_interval, unreachable_timeout=10.0)


# ----------------------------------------------------------------------
# Warm embedded fleet (coordinator + workers reused across sweeps)
# ----------------------------------------------------------------------
class _EmbeddedFleet:
    """A warm localhost coordinator + worker pool, reused across sweeps.

    Spawning worker processes (and re-importing the engine in each) costs
    far more than a small sweep itself, so embedded mode keeps one fleet
    per start method alive for the life of the submitting process: the
    coordinator thread keeps serving between sweeps, and idle workers
    keep polling ``GET /task`` (``idle_timeout=None``) until
    :func:`shutdown_warm_fleets` — registered ``atexit`` — terminates
    them.  Workers are daemons and exit on their own when the
    coordinator disappears, so even an unclean parent death cannot leak
    the fleet.
    """

    def __init__(self, start_method: str | None) -> None:
        method = start_method
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else None
        self._ctx = mp.get_context(method)
        self._lock = threading.Lock()
        self.server = make_coordinator("127.0.0.1", 0)
        self.url = self.server.url
        # Fleet workers never touch the inherited server state (they only
        # speak HTTP to it), so spawning them while the serve thread runs
        # is safe — the same pattern the per-sweep respawn always used.
        self._serve_thread = threading.Thread(
            target=self.server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
        )
        self._serve_thread.start()
        self.processes: list[mp.process.BaseProcess] = []  # guarded-by: _lock

    def _spawn(self) -> mp.process.BaseProcess:
        process = self._ctx.Process(
            target=_embedded_worker,
            args=(self.url, 0.01),
            daemon=True,
            name="repro-remote-worker",
        )
        process.start()
        return process

    def ensure(self, count: int) -> int:
        """Top the pool up to ``count`` live workers; return the warm reuses."""
        with self._lock:
            self.processes = [process for process in self.processes if process.is_alive()]
            reused = min(len(self.processes), count)
            while len(self.processes) < count:
                self.processes.append(self._spawn())
        return reused

    def repair(self) -> None:
        """Respawn any worker that died mid-sweep (polled by the submitter)."""
        with self._lock:
            for index, process in enumerate(self.processes):
                if not process.is_alive():
                    self.processes[index] = self._spawn()

    def shutdown(self) -> None:
        with self._lock:
            processes, self.processes = self.processes, []
        for process in processes:
            process.terminate()
        for process in processes:
            process.join(timeout=5.0)
        self.server.shutdown()
        self._serve_thread.join(timeout=5.0)
        self.server.server_close()


_FLEET_LOCK = threading.Lock()
_WARM_FLEETS: dict = {}  # guarded-by: _FLEET_LOCK — start-method key -> _EmbeddedFleet


def _warm_fleet(start_method: str | None) -> _EmbeddedFleet:
    """Get or create the process-wide warm fleet for one start method."""
    key = start_method or ""
    with _FLEET_LOCK:
        fleet = _WARM_FLEETS.get(key)
        if fleet is None:
            fleet = _EmbeddedFleet(start_method)
            _WARM_FLEETS[key] = fleet
    return fleet


def shutdown_warm_fleets() -> None:
    """Terminate the warm embedded fleets (atexit; also callable from tests)."""
    with _FLEET_LOCK:
        fleets = list(_WARM_FLEETS.values())
        _WARM_FLEETS.clear()
    for fleet in fleets:
        fleet.shutdown()


atexit.register(shutdown_warm_fleets)


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class RemoteExecutor(SweepExecutor):
    """Fan a sweep's scenario shards out over a socket coordinator.

    Conforms to the :class:`~repro.analysis.executors.SweepExecutor`
    contract with the same compatibility rules as the process-sharded
    executor — every sink must be a
    :class:`~repro.analysis.sinks.MergeableSink` and the plan must
    pickle — and the same exactness guarantee: shard results fold in
    ascending shard order, so reductions and every exact sink (plus the
    deterministic :class:`~repro.analysis.sinks.QuantileSketchSink`) are
    bitwise-identical to the sequential sweep at every worker count.

    Two modes, selected by configuration:

    * **External coordinator** (``coordinator=`` URL or
      :data:`COORDINATOR_ENV`): the sweep is POSTed to a standing
      coordinator whose worker fleet may span hosts; the executor polls
      the outcome.  An unreachable coordinator fails the sweep loudly —
      it is an operational error, not a plan incompatibility.
    * **Embedded** (no coordinator configured): the executor uses the
      process-wide **warm fleet** — a localhost coordinator plus
      ``workers`` local worker processes that stay alive across
      ``analyze_*`` calls and are shut down ``atexit`` (see
      :func:`shutdown_warm_fleets`) — so repeated sweeps pay the worker
      spawn cost once.  Embedded payloads travel as
      :class:`~repro.analysis.executors.SharedGridPayload` descriptors:
      localhost workers attach the shared-memory segment by name
      instead of unpickling a private copy of the grid.

    The range is split into ``workers × oversubscribe`` shards for
    pull-based work stealing; see the module docstring for the policy
    and failure semantics.  After each :meth:`execute`, ``last_stats``
    holds the observability counters of that sweep
    (``workers_reused``, ``payload_bytes_shared``) — overwritten per
    sweep, read by the CLI into the sweep record.

    Args:
        workers: Worker hint — embedded worker processes to spawn, and
            the basis of the shard count.  ``None`` reads
            :data:`REMOTE_WORKERS_ENV`, falling back to
            ``max(2, os.cpu_count())``.
        coordinator: Base URL of a standing coordinator; ``None`` reads
            :data:`COORDINATOR_ENV`, and embedded mode serves when that
            is unset too.
        oversubscribe: Shards per worker (finer-than-equal sharding).
        lease_timeout: Seconds a worker may hold a shard before it is
            presumed dead and the shard is reassigned.
        max_attempts: Attempts per shard before the sweep fails.
        poll_interval: Outcome-poll period of the submitting side.
        timeout: Overall wall-clock budget of one sweep.
        start_method: ``multiprocessing`` start method of embedded
            workers; ``None`` prefers ``fork`` where available.
        threads_per_shard: Solver threads each worker runs inside its
            shard (the hybrid axis, shipped in the payload).
    """

    name = "remote"

    def __init__(
        self,
        workers: int | None = None,
        coordinator: str | None = None,
        oversubscribe: int = 4,
        lease_timeout: float = 120.0,
        max_attempts: int = 3,
        poll_interval: float = 0.02,
        timeout: float = 600.0,
        start_method: str | None = None,
        threads_per_shard: int = 1,
    ) -> None:
        if workers is None:
            env_workers = os.environ.get(REMOTE_WORKERS_ENV, "").strip()
            if env_workers:
                try:
                    workers = int(env_workers)
                except ValueError as exc:
                    raise ValueError(
                        f"{REMOTE_WORKERS_ENV} must be an integer, got {env_workers!r}"
                    ) from exc
            else:
                workers = max(2, os.cpu_count() or 1)
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if oversubscribe < 1:
            raise ValueError("oversubscribe must be at least 1")
        if lease_timeout <= 0.0:
            raise ValueError("lease_timeout must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if timeout <= 0.0:
            raise ValueError("timeout must be positive")
        if threads_per_shard < 1:
            raise ValueError("threads_per_shard must be at least 1")
        if start_method is not None and start_method not in mp.get_all_start_methods():
            raise ValueError(
                f"start_method {start_method!r} not available; "
                f"choose from {mp.get_all_start_methods()}"
            )
        if coordinator is None:
            coordinator = os.environ.get(COORDINATOR_ENV, "").strip() or None
        self.workers = workers
        self.coordinator = coordinator.rstrip("/") if coordinator else None
        self.oversubscribe = oversubscribe
        self.lease_timeout = float(lease_timeout)
        self.max_attempts = max_attempts
        self.poll_interval = float(poll_interval)
        self.timeout = float(timeout)
        self.start_method = start_method
        self.threads_per_shard = threads_per_shard
        self.last_stats: dict = {}

    @property
    def parallelism(self) -> int:
        return self.workers * self.threads_per_shard

    def _context(self) -> mp.context.BaseContext:
        method = self.start_method
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else None
        return mp.get_context(method)

    def execute(self, plan: SweepPlan) -> "tuple[BatchReductions, bool, np.ndarray]":
        engine, compiled, sinks = plan.engine, plan.compiled, plan.sinks
        require_mergeable_sinks(sinks, "remote")
        num_scenarios = plan.num_scenarios
        tasks = min(num_scenarios, self.workers * self.oversubscribe)
        if tasks <= 1:
            self.last_stats = {"workers_reused": 0, "payload_bytes_shared": 0}
            return engine._run_chunk_pipeline(
                compiled,
                plan.scenario_source,
                num_scenarios,
                plan.chunk_size,
                sinks,
                workers=self.threads_per_shard,
            )
        shared: SharedGridPayload | None = None
        if self.coordinator is not None:
            # Cross-host fleets cannot map this host's memory: ship the
            # plain pickle payload.
            payload = pickle_sweep_payload(plan, "remote", threads=self.threads_per_shard)
        else:
            # Localhost workers attach the shared segment by name.
            shared = SharedGridPayload.create(plan, "remote", threads=self.threads_per_shard)
            payload = pickle.dumps(shared.descriptor, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            for sink in sinks:
                sink.bind(compiled, num_scenarios)
            reused = False
            if not engine._use_cg(compiled):
                _, reused = engine._factor(compiled)

            ranges = shard_ranges(num_scenarios, tasks)
            workers_reused = 0
            if self.coordinator is not None:
                results = self._run_sweep(self.coordinator, payload, ranges)
            else:
                results, workers_reused = self._run_embedded(payload, ranges)
        finally:
            if shared is not None:
                shared.close()
        self.last_stats = {
            "workers_reused": workers_reused,
            "payload_bytes_shared": shared.nbytes if shared is not None else 0,
        }
        outcomes = [results[task] for task in range(len(ranges))]
        return fold_shard_outcomes(plan, outcomes, reused)

    def _run_sweep(
        self,
        coordinator: str,
        payload: bytes,
        ranges: list[tuple[int, int]],
        ensure_workers: Callable[[], None] | None = None,
    ) -> dict[int, tuple]:
        """Submit one sweep and poll its outcome to completion."""
        request = pickle.dumps(
            {
                "payload": payload,
                "ranges": ranges,
                "lease_timeout": self.lease_timeout,
                "max_attempts": self.max_attempts,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        try:
            status, body = _request(f"{coordinator}/sweeps", data=request)
        except OSError as exc:
            raise RuntimeError(
                f"cannot reach the remote coordinator at {coordinator}: {exc}"
            ) from exc
        if status != 200:
            raise RuntimeError(
                f"remote coordinator at {coordinator} rejected the sweep "
                f"(HTTP {status}): {body[:200]!r}"
            )
        sweep_id = pickle.loads(body)["sweep"]
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                status, body = _request(f"{coordinator}/outcome/{sweep_id}")
            except OSError as exc:
                raise RuntimeError(
                    f"lost the remote coordinator at {coordinator} mid-sweep: {exc}"
                ) from exc
            if status != 200:
                raise RuntimeError(
                    f"remote coordinator dropped sweep {sweep_id} (HTTP {status})"
                )
            outcome = pickle.loads(body)
            if outcome["done"]:
                if outcome["error"] is not None:
                    raise RuntimeError(f"remote sweep failed: {outcome['error']}")
                return outcome["results"]
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"remote sweep timed out after {self.timeout}s "
                    f"({outcome['completed']}/{outcome['total']} shards done)"
                )
            if ensure_workers is not None:
                ensure_workers()
            time.sleep(self.poll_interval)

    def _run_embedded(
        self, payload: bytes, ranges: list[tuple[int, int]]
    ) -> tuple[dict[int, tuple], int]:
        """Run one sweep on the warm localhost fleet; return (results, reused)."""
        fleet = _warm_fleet(self.start_method)
        reused = fleet.ensure(min(self.workers, len(ranges)))
        results = self._run_sweep(fleet.url, payload, ranges, ensure_workers=fleet.repair)
        return results, reused

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        target = self.coordinator or "embedded"
        return f"RemoteExecutor(workers={self.workers}, coordinator={target!r})"


# ----------------------------------------------------------------------
# CLI: `python -m repro.analysis.remote coordinator|worker`
# ----------------------------------------------------------------------
def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.remote",
        description="Run a sweep coordinator or a sweep worker (trusted networks only).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    coordinator = commands.add_parser("coordinator", help="run a standing sweep coordinator")
    coordinator.add_argument("--host", default="127.0.0.1", help="bind address")
    coordinator.add_argument("--port", type=int, default=8765, help="bind port (0 = any free)")

    worker = commands.add_parser("worker", help="run a sweep worker against a coordinator")
    worker.add_argument(
        "--coordinator",
        default=os.environ.get(COORDINATOR_ENV, ""),
        help=f"coordinator base URL (default: ${COORDINATOR_ENV})",
    )
    worker.add_argument("--poll-interval", type=float, default=0.05)
    worker.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="exit after this many idle seconds (default: run until stopped)",
    )
    worker.add_argument(
        "--unreachable-timeout",
        type=float,
        default=60.0,
        help="exit 1 after this many seconds without a reachable coordinator",
    )

    args = parser.parse_args(argv)
    if args.command == "coordinator":
        server = make_coordinator(args.host, args.port)
        print(f"coordinator listening on {server.url}", flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
        return 0
    if not args.coordinator:
        parser.error(f"--coordinator (or ${COORDINATOR_ENV}) is required for workers")
    print(f"worker polling {args.coordinator}", flush=True)
    try:
        return run_worker(
            args.coordinator,
            poll_interval=args.poll_interval,
            idle_timeout=args.idle_timeout,
            unreachable_timeout=args.unreachable_timeout,
        )
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
