"""Streamed per-chunk scenario sinks for mega-sweeps.

Sharded sweeps (:meth:`~repro.analysis.engine.BatchedAnalysisEngine.analyze_batch`
with ``chunk_size``) deliberately never materialise the dense
``(num_nodes, num_scenarios)`` voltage matrix — which also means the only
things a caller could learn about a huge sweep were the built-in worst /
mean / worst-node reductions.  Vectorless-style statistical workloads need
more: quantiles of the worst-drop distribution, per-node IR-drop
histograms, per-node exceedance probabilities against a noise budget, the
handful of worst scenarios worth re-examining in full.

This module provides that as a pluggable subsystem.  A
:class:`ScenarioSink` observes each solved voltage chunk exactly once, in
scenario order, and folds it into whatever bounded-memory state it needs;
``result()`` returns the finished statistic.  The engine streams chunks
into any number of sinks alongside its own reductions, so one pass over a
1e5-scenario sweep can produce quantiles, histograms, exceedance counts
and a top-k shortlist simultaneously — all in ``O(num_nodes * chunk_size)``
working memory.

Exact sinks (:class:`NodeHistogramSink`, :class:`ExceedanceCountSink`,
:class:`JointExceedanceSink`, :class:`TopKScenarioSink`) are
bitwise-independent of the chunk size: they produce the identical result
whether the sweep arrives in one dense block or one scenario at a time.
Approximate sinks trade exactness for O(1) state (:class:`P2QuantileSink`)
or a fixed-size sample (:class:`ReservoirQuantileSink`, which is exact
while the stream still fits in its reservoir and deterministic for a given
seed regardless of chunking).

Most sinks additionally implement the :class:`MergeableSink` capability —
:meth:`snapshot` freezes the state accumulated over a contiguous scenario
shard into a picklable :class:`SinkSnapshot`, and :meth:`merge` folds such
a snapshot into another instance of the same sink.  That is what lets the
process-sharded executor (:mod:`repro.analysis.executors`) split a sweep's
scenario range across worker processes and combine the per-shard sink
states afterwards: the exact sinks merge exactly (counter addition, top-k
union), the reservoir merges by weighted resampling, and
:class:`P2QuantileSink` is deliberately *not* mergeable — its marker state
is order-dependent — so process-sharded sweeps reject it up front and
steer users to the reservoir sink instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..grid.compiled import CompiledGrid
    from ..grid.network import PowerGridNetwork
    from .engine import BatchedAnalysisEngine, ScenarioSource
    from .irdrop import IRDropResult

_SCENARIO_STATISTICS = ("worst", "mean")
"""Per-scenario scalar statistics the scalar-stream sinks can track."""


@runtime_checkable
class ScenarioSink(Protocol):
    """Protocol of a streamed per-chunk reduction sink.

    The engine calls :meth:`bind` once before a sweep starts, then
    :meth:`consume` once per solved chunk in ascending scenario order, and
    the caller reads :meth:`result` when the sweep is done.  A sink
    instance observes one sweep; create a fresh sink per sweep.
    """

    def bind(self, compiled: "CompiledGrid", num_scenarios: int) -> None:
        """Prepare for a sweep of ``num_scenarios`` over ``compiled``."""
        ...  # pragma: no cover - protocol

    def consume(self, chunk_voltages: np.ndarray, scenario_offset: int) -> None:
        """Fold one ``(num_nodes, c)`` voltage chunk into the sink state.

        Column ``j`` holds the per-node voltages (compiled node order) of
        scenario ``scenario_offset + j``.
        """
        ...  # pragma: no cover - protocol

    def result(self) -> object:
        """Return the finished statistic (sink-specific type)."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class SinkSnapshot:
    """Picklable mergeable state of a sink over one contiguous scenario shard.

    Attributes:
        sink_type: Class name of the sink that produced the snapshot; a
            snapshot only merges into a sink of the same type.
        num_scenarios: Number of scenarios the snapshot accumulates.  Any
            scenario indices inside ``state`` are shard-local (the first
            scenario of the shard is index 0); :meth:`MergeableSink.merge`
            re-bases them onto the merging sink's running offset.
        state: Sink-specific arrays plus the configuration needed to check
            that the two sinks are compatible (bin edges, thresholds, k,
            ...).  Arrays are copies — mutating the source sink afterwards
            does not change the snapshot.
    """

    sink_type: str
    num_scenarios: int
    state: dict


@runtime_checkable
class MergeableSink(Protocol):
    """Capability of sinks whose per-shard states can be combined.

    A sweep split into contiguous scenario shards ``[0, s1), [s1, s2), ...``
    is reconstructed by binding one sink to the full sweep and merging the
    shard snapshots **in ascending shard order**: each :meth:`merge` call
    appends ``snapshot.num_scenarios`` scenarios at the sink's current
    offset, exactly like consuming the shard's chunks directly.  Exact
    sinks guarantee the merged result is bitwise-identical to the
    sequential sweep; the reservoir sink merges by weighted resampling
    (statistically equivalent, not bitwise).
    """

    def snapshot(self) -> SinkSnapshot:
        """Freeze the accumulated state into a picklable snapshot."""
        ...  # pragma: no cover - protocol

    def merge(self, snapshot: SinkSnapshot) -> None:
        """Fold a shard snapshot into this sink at its current offset."""
        ...  # pragma: no cover - protocol


class IRDropSink:
    """Base class handling binding, ordering checks and IR-drop conversion.

    Concrete sinks implement :meth:`_consume_drops` over the per-scenario
    *row* layout (``(c, num_nodes)``, contiguous rows) — the same layout
    the engine's own reductions use, which is what keeps per-scenario
    reductions bitwise-independent of the chunk size.
    """

    def __init__(self) -> None:
        self._vdd = 0.0
        self._num_nodes = 0
        self._expected_scenarios = 0
        self._consumed = 0
        self._bound = False

    @property
    def num_consumed(self) -> int:
        """Number of scenarios folded into the sink so far."""
        return self._consumed

    def _require_bound(self) -> None:
        """Raise when ``result()`` is read off a sink that saw no sweep.

        Every sink calls this first, so an accidentally detached sink (one
        that was never passed to the engine) fails loudly instead of
        returning an empty-looking statistic.
        """
        if not self._bound:
            raise ValueError(f"{type(self).__name__} was never bound to a sweep")

    def bind(self, compiled: "CompiledGrid", num_scenarios: int) -> None:
        if self._bound:
            raise ValueError(
                f"{type(self).__name__} already observed a sweep; create a fresh sink per sweep"
            )
        if num_scenarios < 1:
            raise ValueError("num_scenarios must be at least 1")
        self._vdd = float(compiled.vdd)
        self._num_nodes = compiled.num_nodes
        self._expected_scenarios = num_scenarios
        self._bound = True
        self._on_bind(compiled, num_scenarios)

    def consume(self, chunk_voltages: np.ndarray, scenario_offset: int) -> None:
        if not self._bound:
            raise ValueError(f"{type(self).__name__} was not bound before consuming")
        chunk_voltages = np.asarray(chunk_voltages, dtype=float)
        if chunk_voltages.ndim != 2 or chunk_voltages.shape[0] != self._num_nodes:
            raise ValueError(
                f"expected a ({self._num_nodes}, c) voltage chunk, "
                f"got shape {chunk_voltages.shape}"
            )
        self._ingest(self._vdd - np.ascontiguousarray(chunk_voltages.T), scenario_offset)

    def consume_drop_rows(self, drop_rows: np.ndarray, scenario_offset: int) -> None:
        """Fast path: fold precomputed contiguous ``(c, num_nodes)`` IR-drop rows.

        The engine already derives the contiguous transposed drop block of
        each chunk for its own reductions; handing the same block to every
        :class:`IRDropSink` skips one transpose + subtraction per sink per
        chunk.  Semantically identical to :meth:`consume` on the chunk's
        voltages.
        """
        if not self._bound:
            raise ValueError(f"{type(self).__name__} was not bound before consuming")
        drop_rows = np.asarray(drop_rows, dtype=float)
        if drop_rows.ndim != 2 or drop_rows.shape[1] != self._num_nodes:
            raise ValueError(
                f"expected a (c, {self._num_nodes}) IR-drop row block, "
                f"got shape {drop_rows.shape}"
            )
        self._ingest(drop_rows, scenario_offset)

    def _ingest(self, drops: np.ndarray, scenario_offset: int) -> None:
        if scenario_offset != self._consumed:
            raise ValueError(
                f"chunks must arrive in scenario order: expected offset "
                f"{self._consumed}, got {scenario_offset}"
            )
        count = drops.shape[0]
        if self._consumed + count > self._expected_scenarios:
            raise ValueError(
                f"chunk overruns the sweep: {self._consumed} consumed + {count} new "
                f"> {self._expected_scenarios} expected"
            )
        self._consume_drops(drops, scenario_offset)
        self._consumed += count

    def _begin_merge(self, snapshot: SinkSnapshot) -> int:
        """Validate a shard snapshot against this sink; return its offset.

        Mergeable subclasses call this first from :meth:`merge`: it checks
        the snapshot came from the same sink type and fits inside the
        sweep, and returns the global scenario offset the shard lands at
        (the sink's current consumed count — shards must merge in
        ascending order).  The caller folds the state and then advances
        the offset with :meth:`_finish_merge`.
        """
        self._require_bound()
        if snapshot.sink_type != type(self).__name__:
            raise ValueError(
                f"cannot merge a {snapshot.sink_type} snapshot into {type(self).__name__}"
            )
        if snapshot.num_scenarios < 0:
            raise ValueError("snapshot num_scenarios must be non-negative")
        if self._consumed + snapshot.num_scenarios > self._expected_scenarios:
            raise ValueError(
                f"merged shard overruns the sweep: {self._consumed} consumed + "
                f"{snapshot.num_scenarios} new > {self._expected_scenarios} expected"
            )
        return self._consumed

    def _finish_merge(self, snapshot: SinkSnapshot) -> None:
        self._consumed += snapshot.num_scenarios

    def _on_bind(self, compiled: "CompiledGrid", num_scenarios: int) -> None:
        """Hook for subclasses needing grid-dependent state."""

    def _consume_drops(self, drops: np.ndarray, scenario_offset: int) -> None:
        raise NotImplementedError


def _scenario_scalars(drops: np.ndarray, statistic: str) -> np.ndarray:
    """Per-scenario scalar over contiguous ``(c, num_nodes)`` drop rows."""
    if statistic == "worst":
        return drops.max(axis=1)
    return drops.mean(axis=1)


class _ScalarStreamSink(IRDropSink):
    """Base of sinks that reduce each scenario to one scalar first."""

    def __init__(self, statistic: str = "worst") -> None:
        super().__init__()
        if statistic not in _SCENARIO_STATISTICS:
            raise ValueError(f"statistic must be one of {_SCENARIO_STATISTICS}, got {statistic!r}")
        self.statistic = statistic

    def _consume_drops(self, drops: np.ndarray, scenario_offset: int) -> None:
        self._consume_scalars(_scenario_scalars(drops, self.statistic), scenario_offset)

    def _consume_scalars(self, scalars: np.ndarray, scenario_offset: int) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class QuantileEstimate:
    """Streamed quantile estimates of a per-scenario scalar distribution.

    Attributes:
        statistic: Which per-scenario scalar was tracked (worst / mean).
        quantiles: The requested quantile levels, ascending.
        values: Estimated value at each level, aligned with ``quantiles``.
        num_scenarios: Number of scenarios observed.
        exact: True when the estimates are exact empirical quantiles (the
            whole stream was retained), False for streaming approximations.
    """

    statistic: str
    quantiles: tuple[float, ...]
    values: np.ndarray
    num_scenarios: int
    exact: bool

    def value(self, quantile: float) -> float:
        """Value estimated for one of the requested quantile levels."""
        try:
            return float(self.values[self.quantiles.index(quantile)])
        except ValueError as exc:
            raise KeyError(f"quantile {quantile} was not tracked: {self.quantiles}") from exc


_P2_BLOCK = 64
"""Internal batch width of the vectorised P² update.

Incoming per-scenario scalars are buffered to blocks of this fixed width
before the marker state is updated, so the estimate depends only on the
scenario order — never on how the engine chunked the sweep."""


class _P2MarkerBank:
    """Vectorised multi-estimator P² state (Jain & Chlamtac, CACM 1985).

    One row of five markers per tracked quantile level.  Instead of the
    textbook one-observation-at-a-time update, whole blocks of
    observations are folded at once: the marker *positions* advance by the
    block's per-cell counts (a single vectorised comparison), and the
    marker *heights* are then re-adjusted with the piecewise-parabolic
    formula — generalised to integer steps of any size, clamped to keep
    positions strictly monotone, falling back to a unit linear step when
    the parabolic prediction leaves the bracketing interval.  All levels
    update simultaneously as NumPy array ops, which is what makes quantile
    tracking cheap relative to the chunk solves it rides along with.
    """

    def __init__(self, quantiles: Sequence[float]) -> None:
        p = np.asarray(quantiles, dtype=float)
        m = p.size
        self.count = 0
        self.heights = np.zeros((m, 5))
        self.positions = np.tile(np.arange(1.0, 6.0), (m, 1))
        self.increments = np.column_stack(
            (np.zeros(m), p / 2.0, p, (1.0 + p) / 2.0, np.ones(m))
        )
        self.desired = np.column_stack(
            (np.ones(m), 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, np.full(m, 5.0))
        )
        self._quantiles = p
        self._seed: list[float] = []

    def clone(self) -> "_P2MarkerBank":
        """Independent copy (used to estimate without flushing buffers)."""
        other = object.__new__(_P2MarkerBank)
        other.count = self.count
        other.heights = self.heights.copy()
        other.positions = self.positions.copy()
        other.increments = self.increments
        other.desired = self.desired.copy()
        other._quantiles = self._quantiles
        other._seed = list(self._seed)
        return other

    def insert(self, values: np.ndarray) -> None:
        """Fold a block of observations (in scenario order) into the markers."""
        values = np.asarray(values, dtype=float)
        self.count += values.size
        if len(self._seed) < 5:
            take = min(5 - len(self._seed), values.size)
            self._seed.extend(float(v) for v in values[:take])
            values = values[take:]
            if len(self._seed) == 5:
                self.heights[:] = np.sort(np.array(self._seed))
        if values.size == 0 or len(self._seed) < 5:
            return
        heights, positions = self.heights, self.positions
        heights[:, 0] = np.minimum(heights[:, 0], values.min())
        heights[:, 4] = np.maximum(heights[:, 4], values.max())
        below = (values[None, None, :] < heights[:, 1:4, None]).sum(axis=2)
        positions[:, 1:4] += below
        positions[:, 4] += values.size
        self.desired += self.increments * values.size
        # Positions stay integer-valued, so every pass moves each marker at
        # least one whole position; any residual deficit simply carries
        # into the next block's adjustment.
        for _ in range(2 * values.size):
            if not self._adjust():
                break

    def _adjust(self) -> bool:
        """One vectorised height/position adjustment pass; True if moved."""
        heights, positions = self.heights, self.positions
        moved = False
        for i in (1, 2, 3):
            d = self.desired[:, i] - positions[:, i]
            gap_up = positions[:, i + 1] - positions[:, i]
            gap_down = positions[:, i] - positions[:, i - 1]
            up = (d >= 1.0) & (gap_up > 1.0)
            down = (d <= -1.0) & (gap_down > 1.0)
            active = up | down
            if not active.any():
                continue
            moved = True
            step = np.where(
                up,
                np.minimum(np.floor(d), gap_up - 1.0),
                np.maximum(np.ceil(d), 1.0 - gap_down),
            )
            qm, qi, qp = heights[:, i - 1], heights[:, i], heights[:, i + 1]
            nm, ni, npl = positions[:, i - 1], positions[:, i], positions[:, i + 1]
            parabolic = qi + step / (npl - nm) * (
                (ni - nm + step) * (qp - qi) / (npl - ni)
                + (npl - ni - step) * (qi - qm) / (ni - nm)
            )
            valid = (qm < parabolic) & (parabolic < qp)
            unit = np.where(step > 0.0, 1.0, -1.0)
            linear = qi + unit * (np.where(step > 0.0, qp, qm) - qi) / (
                np.where(step > 0.0, npl, nm) - ni
            )
            heights[:, i] = np.where(active, np.where(valid, parabolic, linear), qi)
            positions[:, i] = ni + np.where(active, np.where(valid, step, unit), 0.0)
        return moved

    def estimate(self) -> np.ndarray:
        """Current estimate per level (exact while ≤ 5 observations)."""
        if self.count == 0:
            return np.full(self._quantiles.size, np.nan)
        if self.count <= 5:
            return np.quantile(np.array(self._seed), self._quantiles)
        return self.heights[:, 2].copy()


def _validated_quantiles(quantiles: Sequence[float]) -> tuple[float, ...]:
    levels = tuple(float(q) for q in quantiles)
    if not levels:
        raise ValueError("at least one quantile level is required")
    if any(not 0.0 <= q <= 1.0 for q in levels):
        raise ValueError(f"quantile levels must be in [0, 1], got {levels}")
    if list(levels) != sorted(set(levels)):
        raise ValueError(f"quantile levels must be strictly ascending, got {levels}")
    return levels


class P2QuantileSink(_ScalarStreamSink):
    """O(1)-memory streaming quantiles of a per-scenario scalar (P²).

    A vectorised bank of five-marker P² estimators (one row per requested
    level) tracks the quantiles of the per-scenario worst (or mean) IR
    drop without retaining the stream.  Incoming scalars are buffered to
    fixed-width internal blocks (:data:`_P2_BLOCK`) and folded with a
    NumPy multi-estimator batch step, so the estimate depends only on the
    scenario order — never on the engine's chunking — and the fold costs
    a few vectorised array ops per block instead of a Python marker update
    per scenario.  The estimate is approximate; use
    :class:`ReservoirQuantileSink` when a bounded sample (exact for small
    sweeps) is preferred.

    The marker state is order-dependent, so this sink is **not**
    mergeable across process shards — process-sharded sweeps reject it
    and steer to the reservoir sink.

    Args:
        quantiles: Quantile levels in [0, 1], strictly ascending.
        statistic: Per-scenario scalar to track (``"worst"`` or ``"mean"``).
    """

    def __init__(self, quantiles: Sequence[float], statistic: str = "worst") -> None:
        super().__init__(statistic)
        self.quantiles = _validated_quantiles(quantiles)
        self._bank = _P2MarkerBank(self.quantiles)
        self._pending = np.empty(_P2_BLOCK, dtype=float)
        self._pending_len = 0

    def _consume_scalars(self, scalars: np.ndarray, scenario_offset: int) -> None:
        scalars = np.asarray(scalars, dtype=float)
        position = 0
        while position < scalars.size:
            take = min(_P2_BLOCK - self._pending_len, scalars.size - position)
            self._pending[self._pending_len : self._pending_len + take] = scalars[
                position : position + take
            ]
            self._pending_len += take
            position += take
            if self._pending_len == _P2_BLOCK:
                self._bank.insert(self._pending)
                self._pending_len = 0

    def result(self) -> QuantileEstimate:
        """Current quantile estimates (exact while ≤ 5 scenarios seen).

        Non-destructive: the buffered tail is folded into a clone of the
        marker bank, so reading an estimate mid-sweep does not disturb the
        fixed block boundaries.
        """
        self._require_bound()
        bank = self._bank
        if self._pending_len:
            bank = bank.clone()
            bank.insert(self._pending[: self._pending_len])
        return QuantileEstimate(
            statistic=self.statistic,
            quantiles=self.quantiles,
            values=bank.estimate(),
            num_scenarios=self._consumed,
            exact=self._consumed <= 5,
        )


class ReservoirQuantileSink(_ScalarStreamSink):
    """Bounded-memory quantiles from a uniform reservoir sample.

    Maintains an Algorithm-R reservoir of per-scenario scalars: exact
    empirical quantiles while the sweep fits in the reservoir, an unbiased
    uniform sample beyond that.  Replacement slots are drawn vectorised
    per chunk from the same uniform stream a per-value loop would consume,
    so the sample — and therefore the result — depends only on the seed
    and the scenario order, not on the chunking.

    The sink is mergeable: two reservoirs over disjoint scenario shards
    combine by weighted resampling (each shard's sample is drawn from in
    proportion to the number of scenarios it represents).  A merged
    reservoir is a statistically equivalent uniform sample of the union,
    exact while the combined stream still fits in the capacity — this is
    the quantile sink to use with the process-sharded executor, where the
    order-dependent :class:`P2QuantileSink` is rejected.

    Args:
        capacity: Reservoir size (scenarios retained).
        quantiles: Quantile levels in [0, 1], strictly ascending.
        statistic: Per-scenario scalar to track (``"worst"`` or ``"mean"``).
        seed: Seed of the replacement RNG.
    """

    def __init__(
        self,
        capacity: int,
        quantiles: Sequence[float],
        statistic: str = "worst",
        seed: int = 0,
    ) -> None:
        super().__init__(statistic)
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.quantiles = _validated_quantiles(quantiles)
        self._rng = np.random.default_rng(seed)
        self._sample = np.empty(capacity, dtype=float)
        self._filled = 0

    def _consume_scalars(self, scalars: np.ndarray, scenario_offset: int) -> None:
        scalars = np.asarray(scalars, dtype=float)
        taken = 0
        if self._filled < self.capacity:
            taken = min(self.capacity - self._filled, scalars.size)
            self._sample[self._filled : self._filled + taken] = scalars[:taken]
            self._filled += taken
        rest = scalars[taken:]
        if rest.size == 0:
            return
        # Algorithm R, vectorised: value j of the stream (0-based global
        # index i_j) replaces a uniform slot in [0, i_j + 1) when that slot
        # lands inside the reservoir.  Duplicate slots within one chunk
        # resolve last-wins via fancy assignment — identical to the
        # sequential loop.
        stream_length = scenario_offset + taken + np.arange(rest.size) + 1.0
        slots = np.floor(self._rng.random(rest.size) * stream_length).astype(np.int64)
        accept = slots < self.capacity
        self._sample[slots[accept]] = rest[accept]

    def snapshot(self) -> SinkSnapshot:
        """Freeze the reservoir (and the stream size it represents)."""
        self._require_bound()
        return SinkSnapshot(
            sink_type=type(self).__name__,
            num_scenarios=self._consumed,
            state={
                "capacity": self.capacity,
                "quantiles": self.quantiles,
                "statistic": self.statistic,
                "sample": self._sample[: self._filled].copy(),
            },
        )

    def merge(self, snapshot: SinkSnapshot) -> None:
        """Merge a shard's reservoir by weighted resampling.

        Both samples are drawn from in proportion to the number of
        scenarios each represents, yielding a uniform sample of the
        combined stream.  While everything still fits in the capacity the
        merge is an exact concatenation.
        """
        self._begin_merge(snapshot)
        state = snapshot.state
        if (
            state["capacity"] != self.capacity
            or state["quantiles"] != self.quantiles
            or state["statistic"] != self.statistic
        ):
            raise ValueError(
                "cannot merge reservoirs with different capacity / quantiles / statistic"
            )
        other = np.asarray(state["sample"], dtype=float)
        own_weight, other_weight = self._consumed, snapshot.num_scenarios
        if other.size:
            own_complete = self._filled == own_weight
            other_complete = other.size == other_weight
            if self._filled == 0:
                self._sample[: other.size] = other
                self._filled = other.size
            elif own_complete and other_complete and self._filled + other.size <= self.capacity:
                self._sample[self._filled : self._filled + other.size] = other
                self._filled += other.size
            else:
                own = self._sample[: self._filled]
                # A uniform m-subset of the combined stream contains a
                # Hypergeometric(own_weight, other_weight, m) number of the
                # own side's items; drawing that count and filling each
                # side's share from its (uniform, shuffled) sample keeps
                # every stream item equally likely to survive the merge —
                # exactly, not just in expectation.
                merged_size = min(self.capacity, own.size + other.size)
                from_own = int(
                    self._rng.hypergeometric(own_weight, other_weight, merged_size)
                )
                from_own = min(max(from_own, merged_size - other.size), own.size)
                own = self._rng.permutation(own)[:from_own]
                other = self._rng.permutation(other)[: merged_size - from_own]
                self._sample[:merged_size] = np.concatenate((own, other))
                self._filled = merged_size
        self._finish_merge(snapshot)

    def result(self) -> QuantileEstimate:
        """Empirical quantiles of the reservoir sample."""
        self._require_bound()
        sample = self._sample[: self._filled]
        values = (
            np.quantile(sample, self.quantiles)
            if sample.size
            else np.full(len(self.quantiles), np.nan)
        )
        return QuantileEstimate(
            statistic=self.statistic,
            quantiles=self.quantiles,
            values=np.asarray(values, dtype=float),
            num_scenarios=self._consumed,
            exact=self._consumed <= self.capacity,
        )


class QuantileSketchSink(_ScalarStreamSink):
    """Deterministic log-bucketed quantile sketch of a per-scenario scalar.

    A DDSketch-style estimator: every scalar ``v >= min_value`` lands in
    the logarithmic bucket ``ceil(log(v) / log(gamma))`` with
    ``gamma = (1 + relative_error) / (1 - relative_error)``, and the sketch
    keeps only the integer count per occupied bucket.  Reported quantile
    values are the buckets' relative-error midpoints
    (``2 * gamma**i / (gamma + 1)``), so every estimate is within
    ``relative_error`` (relative) of the true empirical quantile whenever
    that quantile is at least ``min_value``.  Scalars below ``min_value``
    are pooled in a dedicated low bucket reported as ``0.0`` — quantiles
    landing there carry no relative-error guarantee (on IR-drop sweeps the
    tracked statistics sit far above any sensible ``min_value``).

    Unlike the reservoir sink, the state is a pure integer counter array:
    it is invariant to the *order* scalars arrive in, and the merge is
    aligned counter addition.  A sweep split into contiguous shards —
    process-sharded, remote-sharded, any chunk size — therefore merges to
    the **bitwise-identical** sketch the sequential sweep builds, at every
    shard count.  That determinism is what makes this the recommended
    quantile sink under the process and remote executors, where
    :class:`P2QuantileSink` is rejected (order-dependent markers) and
    :class:`ReservoirQuantileSink` merges only statistically.

    Memory is one ``int64`` per occupied bucket:
    ``O(log(max / min_value) / relative_error)``.  The bucket span is
    capped at ``max_buckets`` — a sweep whose dynamic range would exceed
    it raises instead of silently degrading the error bound.

    Args:
        quantiles: Quantile levels in [0, 1], strictly ascending.
        statistic: Per-scenario scalar to track (``"worst"`` or ``"mean"``).
        relative_error: Guaranteed relative accuracy ``alpha`` in (0, 1)
            for quantile values ``>= min_value``.
        min_value: Smallest magnitude resolved by the log buckets; smaller
            scalars pool in the low bucket.
        max_buckets: Hard cap on the contiguous bucket span.
    """

    def __init__(
        self,
        quantiles: Sequence[float],
        statistic: str = "worst",
        relative_error: float = 0.01,
        min_value: float = 1e-9,
        max_buckets: int = 8192,
    ) -> None:
        super().__init__(statistic)
        self.quantiles = _validated_quantiles(quantiles)
        if not 0.0 < relative_error < 1.0:
            raise ValueError(f"relative_error must be in (0, 1), got {relative_error}")
        if min_value <= 0.0:
            raise ValueError(f"min_value must be positive, got {min_value}")
        if max_buckets < 1:
            raise ValueError("max_buckets must be at least 1")
        self.relative_error = float(relative_error)
        self.min_value = float(min_value)
        self.max_buckets = int(max_buckets)
        self._gamma = (1.0 + self.relative_error) / (1.0 - self.relative_error)
        self._log_gamma = np.log(self._gamma)
        self._counts = np.zeros(0, dtype=np.int64)
        self._index_offset = 0  # bucket index of _counts[0]
        self._low_count = 0  # scalars below min_value

    def _bucket_indices(self, values: np.ndarray) -> np.ndarray:
        return np.ceil(np.log(values) / self._log_gamma).astype(np.int64)

    def _ensure_span(self, lo: int, hi: int) -> None:
        """Grow the dense counter array to cover bucket indices [lo, hi]."""
        if self._counts.size == 0:
            span = hi - lo + 1
            if span > self.max_buckets:
                raise ValueError(
                    f"sketch span {span} buckets exceeds max_buckets={self.max_buckets}; "
                    "raise max_buckets or relative_error"
                )
            self._counts = np.zeros(span, dtype=np.int64)
            self._index_offset = lo
            return
        lo = min(lo, self._index_offset)
        hi = max(hi, self._index_offset + self._counts.size - 1)
        span = hi - lo + 1
        if span > self.max_buckets:
            raise ValueError(
                f"sketch span {span} buckets exceeds max_buckets={self.max_buckets}; "
                "raise max_buckets or relative_error"
            )
        if span == self._counts.size:
            return
        grown = np.zeros(span, dtype=np.int64)
        start = self._index_offset - lo
        grown[start : start + self._counts.size] = self._counts
        self._counts = grown
        self._index_offset = lo

    def _consume_scalars(self, scalars: np.ndarray, scenario_offset: int) -> None:
        scalars = np.asarray(scalars, dtype=float)
        if not np.isfinite(scalars).all():
            raise ValueError("quantile sketch requires finite per-scenario scalars")
        low = scalars < self.min_value
        self._low_count += int(low.sum())
        values = scalars[~low]
        if values.size == 0:
            return
        indices = self._bucket_indices(values)
        self._ensure_span(int(indices.min()), int(indices.max()))
        self._counts += np.bincount(
            indices - self._index_offset, minlength=self._counts.size
        ).astype(np.int64)

    def snapshot(self) -> SinkSnapshot:
        """Freeze the bucket counters (order-invariant shard state)."""
        self._require_bound()
        return SinkSnapshot(
            sink_type=type(self).__name__,
            num_scenarios=self._consumed,
            state={
                "quantiles": self.quantiles,
                "statistic": self.statistic,
                "relative_error": self.relative_error,
                "min_value": self.min_value,
                "counts": self._counts.copy(),
                "index_offset": self._index_offset,
                "low_count": self._low_count,
            },
        )

    def merge(self, snapshot: SinkSnapshot) -> None:
        """Fold a shard sketch by aligned counter addition (exact, bitwise).

        Counter addition is associative and commutative over integers, so
        any shard partition of the sweep merges to the identical sketch —
        the property the remote executor's work-stolen shards rely on.
        """
        self._begin_merge(snapshot)
        state = snapshot.state
        if (
            state["quantiles"] != self.quantiles
            or state["statistic"] != self.statistic
            or state["relative_error"] != self.relative_error
            or state["min_value"] != self.min_value
        ):
            raise ValueError(
                "cannot merge quantile sketches with different quantiles / statistic / "
                "relative_error / min_value"
            )
        other = np.asarray(state["counts"], dtype=np.int64)
        self._low_count += int(state["low_count"])
        if other.size:
            offset = int(state["index_offset"])
            self._ensure_span(offset, offset + other.size - 1)
            start = offset - self._index_offset
            self._counts[start : start + other.size] += other
        self._finish_merge(snapshot)

    def result(self) -> QuantileEstimate:
        """Quantiles from the bucket midpoints (relative error ≤ ``relative_error``)."""
        self._require_bound()
        total = self._low_count + int(self._counts.sum())
        if total == 0:
            values = np.full(len(self.quantiles), np.nan)
        else:
            ranks = np.floor(np.asarray(self.quantiles) * (total - 1)).astype(np.int64)
            cumulative = self._low_count + np.cumsum(self._counts)
            positions = np.searchsorted(cumulative, ranks, side="right")
            indices = positions + self._index_offset
            midpoints = 2.0 * np.exp(indices * self._log_gamma) / (self._gamma + 1.0)
            values = np.where(ranks < self._low_count, 0.0, midpoints)
        return QuantileEstimate(
            statistic=self.statistic,
            quantiles=self.quantiles,
            values=np.asarray(values, dtype=float),
            num_scenarios=self._consumed,
            exact=False,
        )


@dataclass(frozen=True)
class NodeHistogram:
    """Per-node IR-drop histogram accumulated over a sweep.

    Attributes:
        edges: ``(num_bins + 1,)`` ascending bin edges in volts.
        counts: ``(num_nodes, num_bins)`` scenario counts per node and bin;
            bin ``i`` covers ``[edges[i], edges[i+1])``, the last bin is
            closed on the right (``numpy.histogram`` semantics).
        underflow: Per-node count of scenarios below ``edges[0]``.
        overflow: Per-node count of scenarios above ``edges[-1]``.
        num_scenarios: Number of scenarios observed.
    """

    edges: np.ndarray
    counts: np.ndarray
    underflow: np.ndarray
    overflow: np.ndarray
    num_scenarios: int

    @property
    def total(self) -> np.ndarray:
        """``(num_nodes,)`` per-node total count including under/overflow."""
        return self.counts.sum(axis=1) + self.underflow + self.overflow

    def node_distribution(self, node: int) -> np.ndarray:
        """Normalised in-range IR-drop distribution of one node."""
        counts = self.counts[node].astype(float)
        total = counts.sum()
        return counts / total if total > 0 else counts


class NodeHistogramSink(IRDropSink):
    """Exact per-node IR-drop histograms with fixed bin edges.

    Counting is integral, so the accumulated histogram is bitwise-identical
    for every chunking of the same sweep and equals a dense single-shot
    ``numpy.histogram`` per node over the full voltage matrix.

    Args:
        edges: Ascending bin edges in volts (``num_bins + 1`` values).
    """

    def __init__(self, edges: Sequence[float] | np.ndarray) -> None:
        super().__init__()
        edges = np.asarray(edges, dtype=float)
        if edges.ndim != 1 or edges.size < 2:
            raise ValueError("edges must be a 1-D array of at least two bin edges")
        if np.any(np.diff(edges) <= 0):
            raise ValueError("edges must be strictly ascending")
        self.edges = edges
        self._counts: np.ndarray | None = None
        self._underflow: np.ndarray | None = None
        self._overflow: np.ndarray | None = None

    @classmethod
    def uniform(cls, lo: float, hi: float, num_bins: int) -> "NodeHistogramSink":
        """Sink with ``num_bins`` equal-width bins spanning ``[lo, hi]``."""
        if num_bins < 1:
            raise ValueError("num_bins must be at least 1")
        if not hi > lo:
            raise ValueError("hi must be greater than lo")
        return cls(np.linspace(lo, hi, num_bins + 1))

    @property
    def num_bins(self) -> int:
        """Number of histogram bins."""
        return self.edges.size - 1

    def _on_bind(self, compiled: "CompiledGrid", num_scenarios: int) -> None:
        self._counts = np.zeros((compiled.num_nodes, self.num_bins), dtype=np.int64)
        self._underflow = np.zeros(compiled.num_nodes, dtype=np.int64)
        self._overflow = np.zeros(compiled.num_nodes, dtype=np.int64)

    def _consume_drops(self, drops: np.ndarray, scenario_offset: int) -> None:
        edges = self.edges
        bins = np.searchsorted(edges, drops, side="right") - 1
        # numpy.histogram closes the last bin on the right.
        bins[drops == edges[-1]] = self.num_bins - 1
        in_range = (drops >= edges[0]) & (drops <= edges[-1])
        node_of = np.broadcast_to(np.arange(self._num_nodes), drops.shape)
        flat = node_of[in_range] * self.num_bins + bins[in_range]
        self._counts += np.bincount(
            flat, minlength=self._num_nodes * self.num_bins
        ).reshape(self._num_nodes, self.num_bins)
        self._underflow += (drops < edges[0]).sum(axis=0)
        self._overflow += (drops > edges[-1]).sum(axis=0)

    def snapshot(self) -> SinkSnapshot:
        """Freeze the accumulated per-node counters."""
        self._require_bound()
        return SinkSnapshot(
            sink_type=type(self).__name__,
            num_scenarios=self._consumed,
            state={
                "edges": self.edges.copy(),
                "counts": self._counts.copy(),
                "underflow": self._underflow.copy(),
                "overflow": self._overflow.copy(),
            },
        )

    def merge(self, snapshot: SinkSnapshot) -> None:
        """Add a shard's counters (exact — counting is associative)."""
        self._begin_merge(snapshot)
        if not np.array_equal(snapshot.state["edges"], self.edges):
            raise ValueError("cannot merge histograms with different bin edges")
        self._counts += snapshot.state["counts"]
        self._underflow += snapshot.state["underflow"]
        self._overflow += snapshot.state["overflow"]
        self._finish_merge(snapshot)

    def result(self) -> NodeHistogram:
        """The accumulated per-node histogram."""
        self._require_bound()
        return NodeHistogram(
            edges=self.edges,
            counts=self._counts,
            underflow=self._underflow,
            overflow=self._overflow,
            num_scenarios=self._consumed,
        )


@dataclass(frozen=True)
class ExceedanceCounts:
    """Per-node exceedance statistics against an IR-drop threshold.

    Attributes:
        threshold: IR-drop threshold in volts (strict ``>`` comparison).
        counts: ``(num_nodes,)`` number of scenarios whose drop at the node
            exceeds the threshold.
        num_scenarios: Number of scenarios observed.
    """

    threshold: float
    counts: np.ndarray
    num_scenarios: int

    @property
    def rates(self) -> np.ndarray:
        """Per-node exceedance probability over the observed scenarios.

        NaN for every node when no scenario was observed — an undefined
        probability must not masquerade as "never exceeds".
        """
        if self.num_scenarios == 0:
            return np.full(self.counts.shape, np.nan)
        return self.counts / self.num_scenarios

    @property
    def worst_node_index(self) -> int:
        """Compiled index of the node exceeding the threshold most often."""
        return int(self.counts.argmax())

    @property
    def any_exceedance_scenarios(self) -> int:
        """Lower bound on scenarios with at least one exceeding node.

        The per-node counters cannot distinguish which scenarios overlap,
        so this is simply the maximum per-node count — a lower bound on
        the true 'any node exceeds' scenario count, exact when one node
        dominates.
        """
        return int(self.counts.max()) if self.counts.size else 0


class ExceedanceCountSink(IRDropSink):
    """Exact per-node counts of scenarios exceeding an IR-drop threshold.

    Integral counting makes the result bitwise-identical for every
    chunking, equal to ``(ir_drop > threshold).sum(axis=1)`` on the dense
    matrix.

    Args:
        threshold: IR-drop threshold in volts (strictly-greater counts).
    """

    def __init__(self, threshold: float) -> None:
        super().__init__()
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = float(threshold)
        self._exceed: np.ndarray | None = None

    def _on_bind(self, compiled: "CompiledGrid", num_scenarios: int) -> None:
        self._exceed = np.zeros(compiled.num_nodes, dtype=np.int64)

    def _consume_drops(self, drops: np.ndarray, scenario_offset: int) -> None:
        self._exceed += (drops > self.threshold).sum(axis=0)

    def snapshot(self) -> SinkSnapshot:
        """Freeze the accumulated per-node exceedance counters."""
        self._require_bound()
        return SinkSnapshot(
            sink_type=type(self).__name__,
            num_scenarios=self._consumed,
            state={"threshold": self.threshold, "counts": self._exceed.copy()},
        )

    def merge(self, snapshot: SinkSnapshot) -> None:
        """Add a shard's counters (exact — counting is associative)."""
        self._begin_merge(snapshot)
        if snapshot.state["threshold"] != self.threshold:
            raise ValueError("cannot merge exceedance counters with different thresholds")
        self._exceed += snapshot.state["counts"]
        self._finish_merge(snapshot)

    def result(self) -> ExceedanceCounts:
        """The accumulated exceedance counters."""
        self._require_bound()
        return ExceedanceCounts(
            threshold=self.threshold,
            counts=self._exceed,
            num_scenarios=self._consumed,
        )


@dataclass(frozen=True)
class JointExceedance:
    """Joint (per-scenario) exceedance statistics against an IR-drop threshold.

    Where :class:`ExceedanceCounts` counts scenarios per node — and can
    therefore only lower-bound "some node exceeds" probabilities — this
    reduction counts *violating nodes per scenario*, so the joint question
    is answered exactly.

    Attributes:
        threshold: IR-drop threshold in volts (strict ``>`` comparison).
        violating_node_counts: ``(max_violating_nodes + 1,)`` histogram:
            entry ``v`` is the number of scenarios with exactly ``v``
            nodes over the threshold (entry 0 = fully clean scenarios).
        num_scenarios: Number of scenarios observed.
    """

    threshold: float
    violating_node_counts: np.ndarray
    num_scenarios: int

    @property
    def scenarios_with_violation(self) -> int:
        """Exact count of scenarios where at least one node exceeds."""
        return int(self.violating_node_counts[1:].sum())

    @property
    def any_exceedance_rate(self) -> float:
        """P(≥ 1 node exceeds) over the observed scenarios.

        NaN when no scenario was observed — an undefined probability must
        not masquerade as "never exceeds".
        """
        if self.num_scenarios == 0:
            return float("nan")
        return self.scenarios_with_violation / self.num_scenarios

    @property
    def max_violating_nodes(self) -> int:
        """Largest number of simultaneously violating nodes seen."""
        nonzero = np.flatnonzero(self.violating_node_counts)
        return int(nonzero[-1]) if nonzero.size else 0


class JointExceedanceSink(IRDropSink):
    """Exact joint exceedance statistics: violating-node counts per scenario.

    Each scenario is reduced to its number of nodes over the threshold;
    the sink keeps the exact integer histogram of those counts.  Counting
    is associative, so the result is bitwise-identical for every chunking
    and merges exactly across process shards.

    Args:
        threshold: IR-drop threshold in volts (strictly-greater counts).
    """

    def __init__(self, threshold: float) -> None:
        super().__init__()
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = float(threshold)
        self._counts = np.zeros(1, dtype=np.int64)

    def _consume_drops(self, drops: np.ndarray, scenario_offset: int) -> None:
        violating = (drops > self.threshold).sum(axis=1)
        chunk_counts = np.bincount(violating)
        self._counts = _padded_add(self._counts, chunk_counts)

    def snapshot(self) -> SinkSnapshot:
        """Freeze the violating-node-count histogram."""
        self._require_bound()
        return SinkSnapshot(
            sink_type=type(self).__name__,
            num_scenarios=self._consumed,
            state={"threshold": self.threshold, "counts": self._counts.copy()},
        )

    def merge(self, snapshot: SinkSnapshot) -> None:
        """Add a shard's histogram (exact — counting is associative)."""
        self._begin_merge(snapshot)
        if snapshot.state["threshold"] != self.threshold:
            raise ValueError("cannot merge joint exceedance sinks with different thresholds")
        self._counts = _padded_add(self._counts, snapshot.state["counts"])
        self._finish_merge(snapshot)

    def result(self) -> JointExceedance:
        """The accumulated joint exceedance statistics."""
        self._require_bound()
        return JointExceedance(
            threshold=self.threshold,
            violating_node_counts=self._counts,
            num_scenarios=self._consumed,
        )


def _padded_add(accumulated: np.ndarray, extra: np.ndarray) -> np.ndarray:
    """Sum two 1-D integer histograms of possibly different lengths."""
    if extra.size > accumulated.size:
        accumulated = np.pad(accumulated, (0, extra.size - accumulated.size))
    accumulated[: extra.size] += extra
    return accumulated


@dataclass(frozen=True)
class TopKScenarios:
    """The ``k`` worst scenarios of a sweep, by per-scenario worst IR drop.

    Attributes:
        scenario_index: ``(k,)`` global scenario indices, worst first (ties
            break toward the lower index).
        worst_ir_drop: ``(k,)`` worst IR drop of each listed scenario.
        worst_node_index: ``(k,)`` compiled node index where each listed
            scenario's worst drop occurs.
        num_scenarios: Number of scenarios observed.
    """

    scenario_index: np.ndarray
    worst_ir_drop: np.ndarray
    worst_node_index: np.ndarray
    num_scenarios: int

    @property
    def k(self) -> int:
        """Number of scenarios retained."""
        return len(self.scenario_index)


class TopKScenarioSink(IRDropSink):
    """Exact top-k worst scenarios with their indices and worst nodes.

    Selection by ``(worst drop descending, scenario index ascending)`` is
    associative, so merging chunk-local candidates into the running top-k
    yields the identical shortlist for every chunking — bitwise equal to
    sorting the dense per-scenario worst vector.

    Args:
        k: Number of worst scenarios to retain.
    """

    def __init__(self, k: int) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self._values = np.empty(0, dtype=float)
        self._indices = np.empty(0, dtype=np.int64)
        self._nodes = np.empty(0, dtype=np.int64)

    def _consume_drops(self, drops: np.ndarray, scenario_offset: int) -> None:
        values = np.concatenate((self._values, drops.max(axis=1)))
        nodes = np.concatenate((self._nodes, drops.argmax(axis=1)))
        indices = np.concatenate(
            (self._indices, scenario_offset + np.arange(drops.shape[0], dtype=np.int64))
        )
        order = np.lexsort((indices, -values))[: self.k]
        self._values = values[order]
        self._indices = indices[order]
        self._nodes = nodes[order]

    def snapshot(self) -> SinkSnapshot:
        """Freeze the shortlist (scenario indices stay shard-local)."""
        self._require_bound()
        return SinkSnapshot(
            sink_type=type(self).__name__,
            num_scenarios=self._consumed,
            state={
                "k": self.k,
                "values": self._values.copy(),
                "indices": self._indices.copy(),
                "nodes": self._nodes.copy(),
            },
        )

    def merge(self, snapshot: SinkSnapshot) -> None:
        """Union a shard's shortlist (exact — selection is associative).

        The shard's scenario indices are re-based onto this sink's current
        offset, so merging shards in ascending order reproduces the global
        indices — and therefore the exact sequential shortlist, including
        tie-breaks toward the lower index.
        """
        offset = self._begin_merge(snapshot)
        if snapshot.state["k"] != self.k:
            raise ValueError("cannot merge top-k sinks with different k")
        values = np.concatenate((self._values, snapshot.state["values"]))
        indices = np.concatenate((self._indices, snapshot.state["indices"] + offset))
        nodes = np.concatenate((self._nodes, snapshot.state["nodes"]))
        order = np.lexsort((indices, -values))[: self.k]
        self._values = values[order]
        self._indices = indices[order]
        self._nodes = nodes[order]
        self._finish_merge(snapshot)

    def result(self) -> TopKScenarios:
        """The accumulated shortlist, worst scenario first."""
        self._require_bound()
        return TopKScenarios(
            scenario_index=self._indices,
            worst_ir_drop=self._values,
            worst_node_index=self._nodes,
            num_scenarios=self._consumed,
        )

    def rematerialize(
        self,
        engine: "BatchedAnalysisEngine",
        network: "PowerGridNetwork | CompiledGrid",
        scenario_source: "ScenarioSource",
        names: Sequence[str] | None = None,
    ) -> "list[IRDropResult]":
        """Replay the shortlisted scenarios unsharded, as full results.

        Streamed sweeps keep only reductions and sink states; this closes
        the triage loop: the shortlisted scenario indices are regenerated
        one row at a time through ``scenario_source`` (the same pure
        function of the scenario range the sweep ran on — e.g. a
        :class:`~repro.analysis.engine.CrossProductScenarioSource` for a
        mega-sweep) and solved through the unsharded batch path, so each
        worst offender comes back as a complete
        :class:`~repro.analysis.irdrop.IRDropResult` with per-node
        voltages and drops.

        Args:
            engine: The analysis engine to solve the replay with (reuses
                its cached factorization when the sweep ran on it).
            network: The grid (or compiled grid) the sweep analysed.
            scenario_source: Chunk generator covering the swept range.
            names: Optional per-result names (default
                ``"scenario <index>"``).

        Returns:
            One :class:`IRDropResult` per shortlisted scenario, worst
            first (aligned with :attr:`TopKScenarios.scenario_index`).
        """
        self._require_bound()
        if self._indices.size == 0:
            return []
        load_rows: list[np.ndarray] = []
        pad_rows: list[np.ndarray] = []
        for index in self._indices:
            loads, pads = scenario_source(int(index), int(index) + 1)
            if loads is not None:
                load_rows.append(np.asarray(loads, dtype=float).reshape(1, -1))
            if pads is not None:
                pad_rows.append(np.asarray(pads, dtype=float).reshape(1, -1))
        if len(load_rows) not in (0, self._indices.size) or len(pad_rows) not in (
            0,
            self._indices.size,
        ):
            raise ValueError(
                "scenario source must return loads / pad voltages consistently "
                "for every scenario"
            )
        if not load_rows and not pad_rows:
            raise ValueError("scenario source returned neither loads nor pad voltages")
        load_matrix = np.vstack(load_rows) if load_rows else None
        pad_matrix = np.vstack(pad_rows) if pad_rows else None
        if names is None:
            names = tuple(f"scenario {int(index)}" for index in self._indices)
        if pad_matrix is not None:
            batch = engine.analyze_pad_batch(
                network, pad_matrix, load_matrix=load_matrix, names=names
            )
        else:
            batch = engine.analyze_batch(network, load_matrix, names=names)
        return batch.results()
