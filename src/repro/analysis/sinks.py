"""Streamed per-chunk scenario sinks for mega-sweeps.

Sharded sweeps (:meth:`~repro.analysis.engine.BatchedAnalysisEngine.analyze_batch`
with ``chunk_size``) deliberately never materialise the dense
``(num_nodes, num_scenarios)`` voltage matrix — which also means the only
things a caller could learn about a huge sweep were the built-in worst /
mean / worst-node reductions.  Vectorless-style statistical workloads need
more: quantiles of the worst-drop distribution, per-node IR-drop
histograms, per-node exceedance probabilities against a noise budget, the
handful of worst scenarios worth re-examining in full.

This module provides that as a pluggable subsystem.  A
:class:`ScenarioSink` observes each solved voltage chunk exactly once, in
scenario order, and folds it into whatever bounded-memory state it needs;
``result()`` returns the finished statistic.  The engine streams chunks
into any number of sinks alongside its own reductions, so one pass over a
1e5-scenario sweep can produce quantiles, histograms, exceedance counts
and a top-k shortlist simultaneously — all in ``O(num_nodes * chunk_size)``
working memory.

Exact sinks (:class:`NodeHistogramSink`, :class:`ExceedanceCountSink`,
:class:`TopKScenarioSink`) are bitwise-independent of the chunk size: they
produce the identical result whether the sweep arrives in one dense block
or one scenario at a time.  Approximate sinks trade exactness for O(1)
state (:class:`P2QuantileSink`) or a fixed-size sample
(:class:`ReservoirQuantileSink`, which is exact while the stream still
fits in its reservoir and deterministic for a given seed regardless of
chunking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..grid.compiled import CompiledGrid

_SCENARIO_STATISTICS = ("worst", "mean")
"""Per-scenario scalar statistics the scalar-stream sinks can track."""


@runtime_checkable
class ScenarioSink(Protocol):
    """Protocol of a streamed per-chunk reduction sink.

    The engine calls :meth:`bind` once before a sweep starts, then
    :meth:`consume` once per solved chunk in ascending scenario order, and
    the caller reads :meth:`result` when the sweep is done.  A sink
    instance observes one sweep; create a fresh sink per sweep.
    """

    def bind(self, compiled: "CompiledGrid", num_scenarios: int) -> None:
        """Prepare for a sweep of ``num_scenarios`` over ``compiled``."""
        ...  # pragma: no cover - protocol

    def consume(self, chunk_voltages: np.ndarray, scenario_offset: int) -> None:
        """Fold one ``(num_nodes, c)`` voltage chunk into the sink state.

        Column ``j`` holds the per-node voltages (compiled node order) of
        scenario ``scenario_offset + j``.
        """
        ...  # pragma: no cover - protocol

    def result(self):
        """Return the finished statistic (sink-specific type)."""
        ...  # pragma: no cover - protocol


class IRDropSink:
    """Base class handling binding, ordering checks and IR-drop conversion.

    Concrete sinks implement :meth:`_consume_drops` over the per-scenario
    *row* layout (``(c, num_nodes)``, contiguous rows) — the same layout
    the engine's own reductions use, which is what keeps per-scenario
    reductions bitwise-independent of the chunk size.
    """

    def __init__(self) -> None:
        self._vdd = 0.0
        self._num_nodes = 0
        self._expected_scenarios = 0
        self._consumed = 0
        self._bound = False

    @property
    def num_consumed(self) -> int:
        """Number of scenarios folded into the sink so far."""
        return self._consumed

    def _require_bound(self) -> None:
        """Raise when ``result()`` is read off a sink that saw no sweep.

        Every sink calls this first, so an accidentally detached sink (one
        that was never passed to the engine) fails loudly instead of
        returning an empty-looking statistic.
        """
        if not self._bound:
            raise ValueError(f"{type(self).__name__} was never bound to a sweep")

    def bind(self, compiled: "CompiledGrid", num_scenarios: int) -> None:
        if self._bound:
            raise ValueError(
                f"{type(self).__name__} already observed a sweep; create a fresh sink per sweep"
            )
        if num_scenarios < 1:
            raise ValueError("num_scenarios must be at least 1")
        self._vdd = float(compiled.vdd)
        self._num_nodes = compiled.num_nodes
        self._expected_scenarios = num_scenarios
        self._bound = True
        self._on_bind(compiled, num_scenarios)

    def consume(self, chunk_voltages: np.ndarray, scenario_offset: int) -> None:
        if not self._bound:
            raise ValueError(f"{type(self).__name__} was not bound before consuming")
        chunk_voltages = np.asarray(chunk_voltages, dtype=float)
        if chunk_voltages.ndim != 2 or chunk_voltages.shape[0] != self._num_nodes:
            raise ValueError(
                f"expected a ({self._num_nodes}, c) voltage chunk, "
                f"got shape {chunk_voltages.shape}"
            )
        self._ingest(self._vdd - np.ascontiguousarray(chunk_voltages.T), scenario_offset)

    def consume_drop_rows(self, drop_rows: np.ndarray, scenario_offset: int) -> None:
        """Fast path: fold precomputed contiguous ``(c, num_nodes)`` IR-drop rows.

        The engine already derives the contiguous transposed drop block of
        each chunk for its own reductions; handing the same block to every
        :class:`IRDropSink` skips one transpose + subtraction per sink per
        chunk.  Semantically identical to :meth:`consume` on the chunk's
        voltages.
        """
        if not self._bound:
            raise ValueError(f"{type(self).__name__} was not bound before consuming")
        drop_rows = np.asarray(drop_rows, dtype=float)
        if drop_rows.ndim != 2 or drop_rows.shape[1] != self._num_nodes:
            raise ValueError(
                f"expected a (c, {self._num_nodes}) IR-drop row block, "
                f"got shape {drop_rows.shape}"
            )
        self._ingest(drop_rows, scenario_offset)

    def _ingest(self, drops: np.ndarray, scenario_offset: int) -> None:
        if scenario_offset != self._consumed:
            raise ValueError(
                f"chunks must arrive in scenario order: expected offset "
                f"{self._consumed}, got {scenario_offset}"
            )
        count = drops.shape[0]
        if self._consumed + count > self._expected_scenarios:
            raise ValueError(
                f"chunk overruns the sweep: {self._consumed} consumed + {count} new "
                f"> {self._expected_scenarios} expected"
            )
        self._consume_drops(drops, scenario_offset)
        self._consumed += count

    def _on_bind(self, compiled: "CompiledGrid", num_scenarios: int) -> None:
        """Hook for subclasses needing grid-dependent state."""

    def _consume_drops(self, drops: np.ndarray, scenario_offset: int) -> None:
        raise NotImplementedError


def _scenario_scalars(drops: np.ndarray, statistic: str) -> np.ndarray:
    """Per-scenario scalar over contiguous ``(c, num_nodes)`` drop rows."""
    if statistic == "worst":
        return drops.max(axis=1)
    return drops.mean(axis=1)


class _ScalarStreamSink(IRDropSink):
    """Base of sinks that reduce each scenario to one scalar first."""

    def __init__(self, statistic: str = "worst") -> None:
        super().__init__()
        if statistic not in _SCENARIO_STATISTICS:
            raise ValueError(f"statistic must be one of {_SCENARIO_STATISTICS}, got {statistic!r}")
        self.statistic = statistic

    def _consume_drops(self, drops: np.ndarray, scenario_offset: int) -> None:
        self._consume_scalars(_scenario_scalars(drops, self.statistic), scenario_offset)

    def _consume_scalars(self, scalars: np.ndarray, scenario_offset: int) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class QuantileEstimate:
    """Streamed quantile estimates of a per-scenario scalar distribution.

    Attributes:
        statistic: Which per-scenario scalar was tracked (worst / mean).
        quantiles: The requested quantile levels, ascending.
        values: Estimated value at each level, aligned with ``quantiles``.
        num_scenarios: Number of scenarios observed.
        exact: True when the estimates are exact empirical quantiles (the
            whole stream was retained), False for streaming approximations.
    """

    statistic: str
    quantiles: tuple[float, ...]
    values: np.ndarray
    num_scenarios: int
    exact: bool

    def value(self, quantile: float) -> float:
        """Value estimated for one of the requested quantile levels."""
        try:
            return float(self.values[self.quantiles.index(quantile)])
        except ValueError as exc:
            raise KeyError(f"quantile {quantile} was not tracked: {self.quantiles}") from exc


class _P2Estimator:
    """Single-quantile P² estimator (Jain & Chlamtac, CACM 1985).

    Five markers track the running quantile in O(1) memory; marker heights
    are adjusted with the piecewise-parabolic (P²) formula, falling back to
    linear interpolation when the parabolic prediction would leave the
    bracketing interval.
    """

    def __init__(self, p: float) -> None:
        self.p = p
        self.heights: list[float] = []
        self.positions = np.arange(1, 6, dtype=float)
        self.desired = np.array([1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0])
        self.increments = np.array([0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0])
        self.count = 0

    def add(self, value: float) -> None:
        self.count += 1
        if len(self.heights) < 5:
            self.heights.append(value)
            self.heights.sort()
            return
        q = self.heights
        if value < q[0]:
            q[0] = value
            cell = 0
        elif value >= q[4]:
            q[4] = value
            cell = 3
        else:
            cell = 0
            while value >= q[cell + 1]:
                cell += 1
        self.positions[cell + 1 :] += 1.0
        self.desired += self.increments
        for i in (1, 2, 3):
            d = self.desired[i] - self.positions[i]
            below = self.positions[i + 1] - self.positions[i]
            above = self.positions[i] - self.positions[i - 1]
            if (d >= 1.0 and below > 1.0) or (d <= -1.0 and above > 1.0):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, step)
                q[i] = candidate
                self.positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        q, n = self.heights, self.positions
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        q, n = self.heights, self.positions
        j = i + int(step)
        return q[i] + step * (q[j] - q[i]) / (n[j] - n[i])

    def estimate(self) -> float:
        if self.count == 0:
            return float("nan")
        if self.count <= 5:
            return float(np.quantile(np.array(self.heights), self.p))
        return float(self.heights[2])


def _validated_quantiles(quantiles: Sequence[float]) -> tuple[float, ...]:
    levels = tuple(float(q) for q in quantiles)
    if not levels:
        raise ValueError("at least one quantile level is required")
    if any(not 0.0 <= q <= 1.0 for q in levels):
        raise ValueError(f"quantile levels must be in [0, 1], got {levels}")
    if list(levels) != sorted(set(levels)):
        raise ValueError(f"quantile levels must be strictly ascending, got {levels}")
    return levels


class P2QuantileSink(_ScalarStreamSink):
    """O(1)-memory streaming quantiles of a per-scenario scalar (P²).

    One five-marker P² estimator per requested level tracks the quantile of
    the per-scenario worst (or mean) IR drop without retaining the stream.
    The estimate is approximate; use :class:`ReservoirQuantileSink` when a
    bounded sample (exact for small sweeps) is preferred.

    Args:
        quantiles: Quantile levels in [0, 1], strictly ascending.
        statistic: Per-scenario scalar to track (``"worst"`` or ``"mean"``).
    """

    def __init__(self, quantiles: Sequence[float], statistic: str = "worst") -> None:
        super().__init__(statistic)
        self.quantiles = _validated_quantiles(quantiles)
        self._estimators = [_P2Estimator(q) for q in self.quantiles]

    def _consume_scalars(self, scalars: np.ndarray, scenario_offset: int) -> None:
        for value in scalars:
            for estimator in self._estimators:
                estimator.add(float(value))

    def result(self) -> QuantileEstimate:
        """Current quantile estimates (exact while ≤ 5 scenarios seen)."""
        self._require_bound()
        return QuantileEstimate(
            statistic=self.statistic,
            quantiles=self.quantiles,
            values=np.array([e.estimate() for e in self._estimators]),
            num_scenarios=self._consumed,
            exact=self._consumed <= 5,
        )


class ReservoirQuantileSink(_ScalarStreamSink):
    """Bounded-memory quantiles from a uniform reservoir sample.

    Maintains an Algorithm-R reservoir of per-scenario scalars: exact
    empirical quantiles while the sweep fits in the reservoir, an unbiased
    uniform sample beyond that.  The sample — and therefore the result —
    depends only on the seed and the scenario order, not on the chunking.

    Args:
        capacity: Reservoir size (scenarios retained).
        quantiles: Quantile levels in [0, 1], strictly ascending.
        statistic: Per-scenario scalar to track (``"worst"`` or ``"mean"``).
        seed: Seed of the replacement RNG.
    """

    def __init__(
        self,
        capacity: int,
        quantiles: Sequence[float],
        statistic: str = "worst",
        seed: int = 0,
    ) -> None:
        super().__init__(statistic)
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.quantiles = _validated_quantiles(quantiles)
        self._rng = np.random.default_rng(seed)
        self._sample = np.empty(capacity, dtype=float)
        self._filled = 0

    def _consume_scalars(self, scalars: np.ndarray, scenario_offset: int) -> None:
        for offset, value in enumerate(scalars):
            if self._filled < self.capacity:
                self._sample[self._filled] = value
                self._filled += 1
                continue
            slot = int(self._rng.integers(0, scenario_offset + offset + 1))
            if slot < self.capacity:
                self._sample[slot] = value

    def result(self) -> QuantileEstimate:
        """Empirical quantiles of the reservoir sample."""
        self._require_bound()
        sample = self._sample[: self._filled]
        values = (
            np.quantile(sample, self.quantiles)
            if sample.size
            else np.full(len(self.quantiles), np.nan)
        )
        return QuantileEstimate(
            statistic=self.statistic,
            quantiles=self.quantiles,
            values=np.asarray(values, dtype=float),
            num_scenarios=self._consumed,
            exact=self._consumed <= self.capacity,
        )


@dataclass(frozen=True)
class NodeHistogram:
    """Per-node IR-drop histogram accumulated over a sweep.

    Attributes:
        edges: ``(num_bins + 1,)`` ascending bin edges in volts.
        counts: ``(num_nodes, num_bins)`` scenario counts per node and bin;
            bin ``i`` covers ``[edges[i], edges[i+1])``, the last bin is
            closed on the right (``numpy.histogram`` semantics).
        underflow: Per-node count of scenarios below ``edges[0]``.
        overflow: Per-node count of scenarios above ``edges[-1]``.
        num_scenarios: Number of scenarios observed.
    """

    edges: np.ndarray
    counts: np.ndarray
    underflow: np.ndarray
    overflow: np.ndarray
    num_scenarios: int

    @property
    def total(self) -> np.ndarray:
        """``(num_nodes,)`` per-node total count including under/overflow."""
        return self.counts.sum(axis=1) + self.underflow + self.overflow

    def node_distribution(self, node: int) -> np.ndarray:
        """Normalised in-range IR-drop distribution of one node."""
        counts = self.counts[node].astype(float)
        total = counts.sum()
        return counts / total if total > 0 else counts


class NodeHistogramSink(IRDropSink):
    """Exact per-node IR-drop histograms with fixed bin edges.

    Counting is integral, so the accumulated histogram is bitwise-identical
    for every chunking of the same sweep and equals a dense single-shot
    ``numpy.histogram`` per node over the full voltage matrix.

    Args:
        edges: Ascending bin edges in volts (``num_bins + 1`` values).
    """

    def __init__(self, edges: Sequence[float] | np.ndarray) -> None:
        super().__init__()
        edges = np.asarray(edges, dtype=float)
        if edges.ndim != 1 or edges.size < 2:
            raise ValueError("edges must be a 1-D array of at least two bin edges")
        if np.any(np.diff(edges) <= 0):
            raise ValueError("edges must be strictly ascending")
        self.edges = edges
        self._counts: np.ndarray | None = None
        self._underflow: np.ndarray | None = None
        self._overflow: np.ndarray | None = None

    @classmethod
    def uniform(cls, lo: float, hi: float, num_bins: int) -> "NodeHistogramSink":
        """Sink with ``num_bins`` equal-width bins spanning ``[lo, hi]``."""
        if num_bins < 1:
            raise ValueError("num_bins must be at least 1")
        if not hi > lo:
            raise ValueError("hi must be greater than lo")
        return cls(np.linspace(lo, hi, num_bins + 1))

    @property
    def num_bins(self) -> int:
        """Number of histogram bins."""
        return self.edges.size - 1

    def _on_bind(self, compiled: "CompiledGrid", num_scenarios: int) -> None:
        self._counts = np.zeros((compiled.num_nodes, self.num_bins), dtype=np.int64)
        self._underflow = np.zeros(compiled.num_nodes, dtype=np.int64)
        self._overflow = np.zeros(compiled.num_nodes, dtype=np.int64)

    def _consume_drops(self, drops: np.ndarray, scenario_offset: int) -> None:
        edges = self.edges
        bins = np.searchsorted(edges, drops, side="right") - 1
        # numpy.histogram closes the last bin on the right.
        bins[drops == edges[-1]] = self.num_bins - 1
        in_range = (drops >= edges[0]) & (drops <= edges[-1])
        node_of = np.broadcast_to(np.arange(self._num_nodes), drops.shape)
        flat = node_of[in_range] * self.num_bins + bins[in_range]
        self._counts += np.bincount(
            flat, minlength=self._num_nodes * self.num_bins
        ).reshape(self._num_nodes, self.num_bins)
        self._underflow += (drops < edges[0]).sum(axis=0)
        self._overflow += (drops > edges[-1]).sum(axis=0)

    def result(self) -> NodeHistogram:
        """The accumulated per-node histogram."""
        self._require_bound()
        return NodeHistogram(
            edges=self.edges,
            counts=self._counts,
            underflow=self._underflow,
            overflow=self._overflow,
            num_scenarios=self._consumed,
        )


@dataclass(frozen=True)
class ExceedanceCounts:
    """Per-node exceedance statistics against an IR-drop threshold.

    Attributes:
        threshold: IR-drop threshold in volts (strict ``>`` comparison).
        counts: ``(num_nodes,)`` number of scenarios whose drop at the node
            exceeds the threshold.
        num_scenarios: Number of scenarios observed.
    """

    threshold: float
    counts: np.ndarray
    num_scenarios: int

    @property
    def rates(self) -> np.ndarray:
        """Per-node exceedance probability over the observed scenarios.

        NaN for every node when no scenario was observed — an undefined
        probability must not masquerade as "never exceeds".
        """
        if self.num_scenarios == 0:
            return np.full(self.counts.shape, np.nan)
        return self.counts / self.num_scenarios

    @property
    def worst_node_index(self) -> int:
        """Compiled index of the node exceeding the threshold most often."""
        return int(self.counts.argmax())

    @property
    def any_exceedance_scenarios(self) -> int:
        """Lower bound on scenarios with at least one exceeding node.

        The per-node counters cannot distinguish which scenarios overlap,
        so this is simply the maximum per-node count — a lower bound on
        the true 'any node exceeds' scenario count, exact when one node
        dominates.
        """
        return int(self.counts.max()) if self.counts.size else 0


class ExceedanceCountSink(IRDropSink):
    """Exact per-node counts of scenarios exceeding an IR-drop threshold.

    Integral counting makes the result bitwise-identical for every
    chunking, equal to ``(ir_drop > threshold).sum(axis=1)`` on the dense
    matrix.

    Args:
        threshold: IR-drop threshold in volts (strictly-greater counts).
    """

    def __init__(self, threshold: float) -> None:
        super().__init__()
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = float(threshold)
        self._exceed: np.ndarray | None = None

    def _on_bind(self, compiled: "CompiledGrid", num_scenarios: int) -> None:
        self._exceed = np.zeros(compiled.num_nodes, dtype=np.int64)

    def _consume_drops(self, drops: np.ndarray, scenario_offset: int) -> None:
        self._exceed += (drops > self.threshold).sum(axis=0)

    def result(self) -> ExceedanceCounts:
        """The accumulated exceedance counters."""
        self._require_bound()
        return ExceedanceCounts(
            threshold=self.threshold,
            counts=self._exceed,
            num_scenarios=self._consumed,
        )


@dataclass(frozen=True)
class TopKScenarios:
    """The ``k`` worst scenarios of a sweep, by per-scenario worst IR drop.

    Attributes:
        scenario_index: ``(k,)`` global scenario indices, worst first (ties
            break toward the lower index).
        worst_ir_drop: ``(k,)`` worst IR drop of each listed scenario.
        worst_node_index: ``(k,)`` compiled node index where each listed
            scenario's worst drop occurs.
        num_scenarios: Number of scenarios observed.
    """

    scenario_index: np.ndarray
    worst_ir_drop: np.ndarray
    worst_node_index: np.ndarray
    num_scenarios: int

    @property
    def k(self) -> int:
        """Number of scenarios retained."""
        return len(self.scenario_index)


class TopKScenarioSink(IRDropSink):
    """Exact top-k worst scenarios with their indices and worst nodes.

    Selection by ``(worst drop descending, scenario index ascending)`` is
    associative, so merging chunk-local candidates into the running top-k
    yields the identical shortlist for every chunking — bitwise equal to
    sorting the dense per-scenario worst vector.

    Args:
        k: Number of worst scenarios to retain.
    """

    def __init__(self, k: int) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self._values = np.empty(0, dtype=float)
        self._indices = np.empty(0, dtype=np.int64)
        self._nodes = np.empty(0, dtype=np.int64)

    def _consume_drops(self, drops: np.ndarray, scenario_offset: int) -> None:
        values = np.concatenate((self._values, drops.max(axis=1)))
        nodes = np.concatenate((self._nodes, drops.argmax(axis=1)))
        indices = np.concatenate(
            (self._indices, scenario_offset + np.arange(drops.shape[0], dtype=np.int64))
        )
        order = np.lexsort((indices, -values))[: self.k]
        self._values = values[order]
        self._indices = indices[order]
        self._nodes = nodes[order]

    def result(self) -> TopKScenarios:
        """The accumulated shortlist, worst scenario first."""
        self._require_bound()
        return TopKScenarios(
            scenario_index=self._indices,
            worst_ir_drop=self._values,
            worst_node_index=self._nodes,
            num_scenarios=self._consumed,
        )
