"""Modified nodal analysis (MNA) assembly for power-grid networks.

The "conventional approach" in the paper is the standard power-grid analysis
flow: build the nodal conductance matrix of the resistive network, stamp the
workload currents on the right-hand side, fix the pad nodes at the supply
voltage and solve the resulting sparse linear system for the node voltages.
The IR drop of a node is then ``Vdd - V(node)``.

Because every voltage source in an IBM-style power-grid netlist connects a
node directly to ground, we do not need the full MNA formulation with extra
branch-current unknowns: pad nodes are eliminated from the unknown vector
(Dirichlet boundary conditions), which keeps the system symmetric positive
definite and lets the solvers use Cholesky / conjugate-gradient methods.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..grid.elements import GROUND_NODE
from ..grid.network import PowerGridNetwork


@dataclass
class MNASystem:
    """A reduced nodal system ``G v = b`` for the unknown node voltages.

    Attributes:
        matrix: Sparse SPD conductance matrix over the unknown (non-pad)
            nodes, in CSR format.
        rhs: Right-hand side vector (injected currents plus contributions of
            the fixed pad voltages).
        unknown_nodes: Names of the unknown nodes, in matrix row order.
        fixed_voltages: Mapping of pad node name to its fixed voltage.
        ground_connected: True if at least one resistor references the ground
            node directly (rare in power nets, but supported).
    """

    matrix: sp.csr_matrix
    rhs: np.ndarray
    unknown_nodes: list[str]
    fixed_voltages: dict[str, float]
    ground_connected: bool

    @property
    def size(self) -> int:
        """Number of unknown node voltages."""
        return len(self.unknown_nodes)

    def full_solution(self, unknown_voltages: np.ndarray) -> dict[str, float]:
        """Combine solved unknowns with the fixed pad voltages.

        Args:
            unknown_voltages: Solution vector for the unknown nodes, in the
                same order as :attr:`unknown_nodes`.

        Returns:
            Mapping of every grid node name to its voltage.
        """
        if unknown_voltages.shape != (self.size,):
            raise ValueError(
                f"expected solution of shape ({self.size},), got {unknown_voltages.shape}"
            )
        voltages = dict(self.fixed_voltages)
        for name, value in zip(self.unknown_nodes, unknown_voltages):
            voltages[name] = float(value)
        return voltages


class MNAAssembler:
    """Assemble the reduced nodal system of a power-grid network."""

    def assemble(self, network: PowerGridNetwork) -> MNASystem:
        """Build ``G v = b`` for the non-pad nodes of ``network``.

        Raises:
            ValueError: If the network has no supply pads (the system would
                be singular) or a pad node also appears as a load-only island.
        """
        fixed_voltages: dict[str, float] = {}
        for source in network.iter_pads():
            fixed_voltages[source.node] = source.voltage
        if not fixed_voltages:
            raise ValueError("network has no voltage sources; the nodal system is singular")

        node_names = list(network.nodes)
        unknown_nodes = [name for name in node_names if name not in fixed_voltages]
        index = {name: i for i, name in enumerate(unknown_nodes)}
        n = len(unknown_nodes)

        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        rhs = np.zeros(n, dtype=float)
        ground_connected = False

        def stamp_diagonal(node: str, conductance: float) -> None:
            i = index[node]
            rows.append(i)
            cols.append(i)
            data.append(conductance)

        for resistor in network.iter_resistors():
            conductance = 1.0 / resistor.resistance
            a, b = resistor.node_a, resistor.node_b
            a_ground = a == GROUND_NODE
            b_ground = b == GROUND_NODE
            if a_ground and b_ground:
                continue
            if a_ground or b_ground:
                ground_connected = True
                node = b if a_ground else a
                if node in index:
                    stamp_diagonal(node, conductance)
                # A resistor from a pad node to ground only affects the pad
                # current, not the reduced system.
                continue

            a_fixed = a in fixed_voltages
            b_fixed = b in fixed_voltages
            if a_fixed and b_fixed:
                continue
            if a_fixed or b_fixed:
                fixed, free = (a, b) if a_fixed else (b, a)
                i = index[free]
                stamp_diagonal(free, conductance)
                rhs[i] += conductance * fixed_voltages[fixed]
                continue

            i, j = index[a], index[b]
            stamp_diagonal(a, conductance)
            stamp_diagonal(b, conductance)
            rows.extend((i, j))
            cols.extend((j, i))
            data.extend((-conductance, -conductance))

        for load in network.iter_loads():
            if load.node in index:
                rhs[index[load.node]] -= load.current
            # Loads attached directly to pad nodes draw current from the
            # ideal source and do not change the reduced system.

        matrix = sp.csr_matrix(
            (np.asarray(data), (np.asarray(rows), np.asarray(cols))), shape=(n, n)
        )
        matrix.sum_duplicates()
        return MNASystem(
            matrix=matrix,
            rhs=rhs,
            unknown_nodes=unknown_nodes,
            fixed_voltages=fixed_voltages,
            ground_connected=ground_connected,
        )


def assemble(network: PowerGridNetwork) -> MNASystem:
    """Convenience wrapper around :class:`MNAAssembler`."""
    return MNAAssembler().assemble(network)
