"""Modified nodal analysis (MNA) assembly for power-grid networks.

The "conventional approach" in the paper is the standard power-grid analysis
flow: build the nodal conductance matrix of the resistive network, stamp the
workload currents on the right-hand side, fix the pad nodes at the supply
voltage and solve the resulting sparse linear system for the node voltages.
The IR drop of a node is then ``Vdd - V(node)``.

Because every voltage source in an IBM-style power-grid netlist connects a
node directly to ground, we do not need the full MNA formulation with extra
branch-current unknowns: pad nodes are eliminated from the unknown vector
(Dirichlet boundary conditions), which keeps the system symmetric positive
definite and lets the solvers use Cholesky / conjugate-gradient methods.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..grid.compiled import CompiledGrid
from ..grid.network import PowerGridNetwork


@dataclass
class MNASystem:
    """A reduced nodal system ``G v = b`` for the unknown node voltages.

    Attributes:
        matrix: Sparse SPD conductance matrix over the unknown (non-pad)
            nodes, in CSR format.
        rhs: Right-hand side vector (injected currents plus contributions of
            the fixed pad voltages).
        unknown_nodes: Names of the unknown nodes, in matrix row order.
        fixed_voltages: Mapping of pad node name to its fixed voltage.
        ground_connected: True if at least one resistor references the ground
            node directly (rare in power nets, but supported).
    """

    matrix: sp.csr_matrix
    rhs: np.ndarray
    unknown_nodes: list[str]
    fixed_voltages: dict[str, float]
    ground_connected: bool

    @property
    def size(self) -> int:
        """Number of unknown node voltages."""
        return len(self.unknown_nodes)

    def full_solution(self, unknown_voltages: np.ndarray) -> dict[str, float]:
        """Combine solved unknowns with the fixed pad voltages.

        Args:
            unknown_voltages: Solution vector for the unknown nodes, in the
                same order as :attr:`unknown_nodes`.

        Returns:
            Mapping of every grid node name to its voltage.
        """
        if unknown_voltages.shape != (self.size,):
            raise ValueError(
                f"expected solution of shape ({self.size},), got {unknown_voltages.shape}"
            )
        voltages = dict(self.fixed_voltages)
        for name, value in zip(self.unknown_nodes, unknown_voltages):
            voltages[name] = float(value)
        return voltages


class MNAAssembler:
    """Assemble the reduced nodal system of a power-grid network.

    Assembly is delegated to the network's cached :class:`CompiledGrid`: the
    topology is lowered to integer-indexed arrays once, and the sparse
    matrix is produced by a fully vectorised COO→CSR conversion instead of
    per-element Python stamping.
    """

    def assemble(self, network: PowerGridNetwork | CompiledGrid) -> MNASystem:
        """Build ``G v = b`` for the non-pad nodes of ``network``.

        Accepts either a :class:`PowerGridNetwork` (compiled on demand, with
        caching) or an already compiled grid.

        Raises:
            ValueError: If the network has no supply pads (the system would
                be singular).
        """
        compiled = network if isinstance(network, CompiledGrid) else network.compile()
        return system_from_compiled(compiled)


def system_from_compiled(
    compiled: CompiledGrid,
    loads: np.ndarray | None = None,
    matrix_copy: bool = True,
) -> MNASystem:
    """Build the legacy :class:`MNASystem` view of a compiled grid.

    Args:
        compiled: The compiled grid.
        loads: Optional per-node load override (defaults to the grid's own
            loads).
        matrix_copy: Hand out a copy of the cached reduced matrix (the
            default), preserving the legacy guarantee that every assembled
            system is independently mutable.  Internal read-only consumers
            may pass ``False`` to skip the copy.

    Raises:
        ValueError: If the grid has no supply pads.
    """
    if compiled.pad_node.size == 0:
        raise ValueError("network has no voltage sources; the nodal system is singular")
    fixed_voltages = {
        compiled.node_names[i]: float(compiled.pad_voltage[i]) for i in compiled.pad_node
    }
    matrix = compiled.reduced_matrix
    return MNASystem(
        matrix=matrix.copy() if matrix_copy else matrix,
        rhs=compiled.rhs(loads),
        unknown_nodes=list(compiled.unknown_nodes),
        fixed_voltages=fixed_voltages,
        ground_connected=compiled.ground_connected,
    )


def assemble(network: PowerGridNetwork | CompiledGrid) -> MNASystem:
    """Convenience wrapper around :class:`MNAAssembler`."""
    return MNAAssembler().assemble(network)
