"""Conventional power-planning flow: rules, sizing, constraints, planner.

This package implements the baseline the paper compares against — the
iterative analyse-and-resize loop of Fig. 1 — as well as the analytical
eq. (1) sizing and the reliability constraints (IR-drop margin, EM ``Jmax``,
core-width budget of eq. 3) shared with the PowerPlanningDL framework.
"""

from .constraints import ConstraintEvaluation, ReliabilityConstraints
from .decap import DecapPlacement, DecapPlan, DecapPlanner, DecapTechnology
from .planner import ConventionalPowerPlanner, PlanningIteration, PowerPlanResult
from .rules import DesignRules
from .sizing import AnalyticalSizer, SizingParameters, estimate_line_currents, width_from_ir_budget

__all__ = [
    "AnalyticalSizer",
    "ConstraintEvaluation",
    "ConventionalPowerPlanner",
    "DecapPlacement",
    "DecapPlan",
    "DecapPlanner",
    "DecapTechnology",
    "DesignRules",
    "PlanningIteration",
    "PowerPlanResult",
    "ReliabilityConstraints",
    "SizingParameters",
    "estimate_line_currents",
    "width_from_ir_budget",
]
