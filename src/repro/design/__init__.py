"""Conventional power-planning flow: rules, sizing, constraints, planner.

This package implements the baseline the paper compares against — the
iterative analyse-and-resize loop of Fig. 1 — as well as the analytical
eq. (1) sizing and the reliability constraints (IR-drop margin, EM ``Jmax``,
core-width budget of eq. 3) shared with the PowerPlanningDL framework.
The batched, model-guided candidate search (`search`) turns the one-move
loop into a per-iteration search over width / pitch / decap moves ranked
by the repo's own NN regressor.
"""

from .constraints import ConstraintEvaluation, ReliabilityConstraints
from .decap import DecapPlacement, DecapPlan, DecapPlanner, DecapTechnology
from .planner import ConventionalPowerPlanner, PlanningIteration, PowerPlanResult
from .rules import DesignRules
from .search import (
    CandidateMove,
    CandidateRanker,
    CommittedMove,
    SearchConfig,
    SearchStats,
)
from .sizing import AnalyticalSizer, SizingParameters, estimate_line_currents, width_from_ir_budget

__all__ = [
    "AnalyticalSizer",
    "CandidateMove",
    "CandidateRanker",
    "CommittedMove",
    "ConstraintEvaluation",
    "ConventionalPowerPlanner",
    "DecapPlacement",
    "DecapPlan",
    "DecapPlanner",
    "DecapTechnology",
    "DesignRules",
    "PlanningIteration",
    "PowerPlanResult",
    "ReliabilityConstraints",
    "SearchConfig",
    "SearchStats",
    "SizingParameters",
    "estimate_line_currents",
    "width_from_ir_budget",
]
