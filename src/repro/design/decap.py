"""Decoupling-capacitor planning (the paper's stated future work).

The paper excludes decap placement from its scope and names "decap
placement-aware power grid design" as future work.  This module provides that
extension in the simplest industrially meaningful form: a greedy hot-spot
driven planner that places decoupling capacitance in the free floorplan area
around the locations with the worst *dynamic* IR-drop exposure, sized by the
standard charge-sharing budget

    C_decap >= I_transient * t_response / dV_allowed

where ``I_transient`` is the local switching current, ``t_response`` the time
the package/regulator needs to respond and ``dV_allowed`` the transient noise
budget.  The planner consumes the same floorplan and IR-drop artefacts the
rest of the library produces, so it composes with both the conventional flow
(use the analysed map) and the PowerPlanningDL flow (use the predicted map).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid.floorplan import Floorplan
from ..grid.technology import Technology


@dataclass(frozen=True)
class DecapTechnology:
    """Decap-relevant technology parameters.

    Attributes:
        capacitance_density: MOS decap capacitance per unit area, in F/um².
        response_time: Time the upstream supply needs to take over, seconds.
        transient_voltage_budget: Allowed transient droop in volts.
        max_area_fraction: Maximum fraction of the free core area that may be
            filled with decap cells.
    """

    capacitance_density: float = 1.5e-15
    response_time: float = 2e-9
    transient_voltage_budget: float = 0.05
    max_area_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.capacitance_density <= 0:
            raise ValueError("capacitance_density must be positive")
        if self.response_time <= 0:
            raise ValueError("response_time must be positive")
        if self.transient_voltage_budget <= 0:
            raise ValueError("transient_voltage_budget must be positive")
        if not 0 < self.max_area_fraction <= 1:
            raise ValueError("max_area_fraction must be in (0, 1]")

    def required_capacitance(self, transient_current: float) -> float:
        """Charge-sharing decap requirement for a transient current, in farads."""
        if transient_current < 0:
            raise ValueError("transient_current must be non-negative")
        return transient_current * self.response_time / self.transient_voltage_budget

    def area_for_capacitance(self, capacitance: float) -> float:
        """Silicon area needed to implement ``capacitance``, in um²."""
        if capacitance < 0:
            raise ValueError("capacitance must be non-negative")
        return capacitance / self.capacitance_density


@dataclass(frozen=True)
class DecapPlacement:
    """One placed decoupling capacitor.

    Attributes:
        name: Placement name.
        x: X coordinate of the decap cell centre, um.
        y: Y coordinate, um.
        capacitance: Implemented capacitance in farads.
        area: Occupied area in um².
        target_block: Block whose transient demand this decap serves.
    """

    name: str
    x: float
    y: float
    capacitance: float
    area: float
    target_block: str


@dataclass
class DecapPlan:
    """Outcome of decap planning for one floorplan.

    Attributes:
        placements: Placed decap cells, highest-priority first.
        total_capacitance: Total placed capacitance, farads.
        total_area: Total decap area, um².
        demand_coverage: Fraction of the total required capacitance actually
            placed (1.0 when the area budget sufficed everywhere).
    """

    placements: list[DecapPlacement]
    total_capacitance: float
    total_area: float
    demand_coverage: float

    @property
    def capacitance_by_block(self) -> dict[str, float]:
        """Placed capacitance per target block, farads."""
        totals: dict[str, float] = {}
        for placement in self.placements:
            totals[placement.target_block] = (
                totals.get(placement.target_block, 0.0) + placement.capacitance
            )
        return totals


class DecapPlanner:
    """Hot-spot-driven decoupling-capacitor planner.

    Blocks are ranked by their transient exposure (switching current weighted
    by the local IR drop when a drop map is supplied) and each gets the
    charge-sharing capacitance it needs; when the free-area budget cannot
    cover the total demand, every allocation is scaled down proportionally so
    the highest-priority blocks are listed first but all blocks keep a share.

    Args:
        technology: Power-grid technology (for Vdd-referenced defaults).
        decap_technology: Decap sizing parameters.
    """

    def __init__(
        self,
        technology: Technology,
        decap_technology: DecapTechnology | None = None,
    ) -> None:
        self.technology = technology
        self.decap_technology = decap_technology or DecapTechnology(
            transient_voltage_budget=technology.ir_drop_limit / 2.0
        )

    def plan(
        self,
        floorplan: Floorplan,
        ir_drop_map: np.ndarray | None = None,
    ) -> DecapPlan:
        """Place decaps for every block of ``floorplan``.

        Args:
            floorplan: The floorplan to protect.
            ir_drop_map: Optional square IR-drop map (volts) used to weight
                block priority; without it blocks are ranked by switching
                current alone.

        Returns:
            The decap plan (possibly partial if the area budget runs out).
        """
        decap = self.decap_technology
        blocks = list(floorplan.iter_blocks())
        if not blocks:
            return DecapPlan(
                placements=[], total_capacitance=0.0, total_area=0.0, demand_coverage=1.0
            )

        priorities = []
        for block in blocks:
            weight = block.switching_current
            if ir_drop_map is not None:
                weight *= 1.0 + self._map_value_at(ir_drop_map, floorplan, *block.center) / max(
                    self.technology.ir_drop_limit, 1e-12
                )
            priorities.append(weight)
        order = np.argsort(priorities)[::-1]

        occupied_block_area = sum(block.area for block in blocks)
        free_area = max(floorplan.core_area - occupied_block_area, 0.0)
        area_budget = free_area * decap.max_area_fraction

        # Size every block's requirement first; when the free-area budget
        # cannot cover the total demand, scale all allocations down uniformly
        # so every block keeps a proportional share of protection.
        required_areas = np.asarray(
            [
                decap.area_for_capacitance(
                    decap.required_capacitance(blocks[index].switching_current)
                )
                for index in order
            ]
        )
        total_required = float(required_areas.sum())
        shrink = 1.0 if total_required <= area_budget else area_budget / max(total_required, 1e-30)

        placements: list[DecapPlacement] = []
        total_capacitance = 0.0
        total_area = 0.0
        total_demand = 0.0
        for rank, index in enumerate(order):
            block = blocks[index]
            required_c = decap.required_capacitance(block.switching_current)
            total_demand += required_c
            placed_area = required_areas[rank] * shrink
            if placed_area <= 0:
                continue
            placed_c = placed_area * decap.capacitance_density
            cx, cy = block.center
            placements.append(
                DecapPlacement(
                    name=f"decap_{rank}_{block.name}",
                    x=cx,
                    y=cy,
                    capacitance=placed_c,
                    area=placed_area,
                    target_block=block.name,
                )
            )
            total_capacitance += placed_c
            total_area += placed_area

        coverage = 1.0 if total_demand == 0 else min(total_capacitance / total_demand, 1.0)
        return DecapPlan(
            placements=placements,
            total_capacitance=total_capacitance,
            total_area=total_area,
            demand_coverage=coverage,
        )

    @staticmethod
    def _map_value_at(ir_map: np.ndarray, floorplan: Floorplan, x: float, y: float) -> float:
        """Sample a square IR-drop map at a floorplan coordinate."""
        ir_map = np.atleast_2d(ir_map)
        rows, cols = ir_map.shape
        col = int(np.clip(x / max(floorplan.core_width, 1e-12) * cols, 0, cols - 1))
        row = int(np.clip(y / max(floorplan.core_height, 1e-12) * rows, 0, rows - 1))
        return float(ir_map[row, col])
