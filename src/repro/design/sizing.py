"""Analytical initial sizing of power-grid line widths.

The conventional flow starts from an analytical estimate of each line's
width before any analysis has been run.  The estimate implements eq. (1) of
the paper: ``w_i = rho * l_i * I_i / V_IR``, where ``I_i`` is the current a
line is expected to carry and ``V_IR`` is the per-line IR-drop budget, and
then takes the maximum with the EM-driven width ``I_i / Jmax`` (eq. 4) so
that both reliability mechanisms are honoured from the start.

The per-line current ``I_i`` is estimated geometrically (before analysis the
true branch currents are unknown): every functional block's switching
current is split over the grid lines that cross the block, in proportion to
how close each line is to the block centre — the same current-allocation
idea as eqs. (7)-(9) of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid.builder import GridTopology
from ..grid.floorplan import Floorplan
from ..grid.technology import Technology
from .rules import DesignRules


@dataclass(frozen=True)
class SizingParameters:
    """Tuning knobs of the analytical sizing.

    Attributes:
        ir_budget_fraction: Fraction of the total IR-drop limit allocated to
            a single line (a line is one stripe of a two-layer mesh, so a
            value around 0.5 leaves headroom for the orthogonal layer and the
            vias).
        em_safety_factor: Multiplier (> 1) applied to the EM-required width.
        distance_decay: Exponential decay length, as a fraction of the core
            size, used when splitting block currents over nearby lines.
    """

    ir_budget_fraction: float = 0.5
    em_safety_factor: float = 1.2
    distance_decay: float = 0.15

    def __post_init__(self) -> None:
        if not 0 < self.ir_budget_fraction <= 1:
            raise ValueError("ir_budget_fraction must be in (0, 1]")
        if self.em_safety_factor < 1:
            raise ValueError("em_safety_factor must be >= 1")
        if self.distance_decay <= 0:
            raise ValueError("distance_decay must be positive")


def _ir_width_array(
    sheet_resistance: np.ndarray,
    length: np.ndarray,
    current: np.ndarray,
    ir_budget: float,
) -> np.ndarray:
    """Vectorised eq. (1): ``w = rho * l * I / V_IR`` (0 for idle lines)."""
    positive = (current > 0) & (length > 0)
    return np.where(positive, sheet_resistance * length * current / ir_budget, 0.0)


def estimate_line_currents(
    floorplan: Floorplan,
    topology: GridTopology,
    decay_fraction: float = 0.15,
) -> np.ndarray:
    """Estimate the current each power-grid line must deliver.

    Every block's switching current is distributed over all lines of each
    direction with exponentially decaying weights in the distance between the
    line and the block centre, then the two directions are each assumed to
    carry the full block current (both layers deliver current in a mesh, and
    sizing each for the full share is the conservative choice the
    conventional flow makes before analysis).

    Returns:
        Array of length ``topology.num_lines`` with the estimated current per
        line in amperes (vertical lines first, then horizontal).
    """
    if decay_fraction <= 0:
        raise ValueError("decay_fraction must be positive")
    currents = np.zeros(topology.num_lines, dtype=float)
    v_positions = np.asarray(topology.vertical_positions)
    h_positions = np.asarray(topology.horizontal_positions)
    v_decay = max(floorplan.core_width * decay_fraction, 1e-9)
    h_decay = max(floorplan.core_height * decay_fraction, 1e-9)

    for block in floorplan.iter_blocks():
        if block.switching_current <= 0:
            continue
        cx, cy = block.center
        v_weights = np.exp(-np.abs(v_positions - cx) / v_decay)
        h_weights = np.exp(-np.abs(h_positions - cy) / h_decay)
        v_weights = v_weights / v_weights.sum()
        h_weights = h_weights / h_weights.sum()
        currents[: topology.num_vertical] += block.switching_current * v_weights
        currents[topology.num_vertical :] += block.switching_current * h_weights
    return currents


class AnalyticalSizer:
    """Compute initial line widths from eq. (1) and the EM constraint.

    Args:
        technology: Sheet resistances, Vdd, Jmax and IR-drop budget.
        rules: Design rules used to legalise the computed widths.
        parameters: Sizing tuning knobs.
    """

    def __init__(
        self,
        technology: Technology,
        rules: DesignRules | None = None,
        parameters: SizingParameters | None = None,
    ) -> None:
        self.technology = technology
        self.rules = rules or DesignRules.from_technology(technology)
        self.parameters = parameters or SizingParameters()

    def size(self, floorplan: Floorplan, topology: GridTopology) -> np.ndarray:
        """Return legalised initial widths for every power-grid line.

        The width of line ``i`` is the larger of the IR-drop-driven width
        (eq. 1) and the EM-driven width (eq. 4), legalised against the design
        rules.
        """
        params = self.parameters
        line_currents = estimate_line_currents(
            floorplan, topology, decay_fraction=params.distance_decay
        )
        ir_budget = self.technology.ir_drop_limit * params.ir_budget_fraction
        if ir_budget <= 0:
            raise ValueError("ir_budget must be positive")

        vertical = np.arange(topology.num_lines) < topology.num_vertical
        sheet_resistance = np.where(
            vertical,
            self.technology.vertical_layer.sheet_resistance,
            self.technology.horizontal_layer.sheet_resistance,
        )
        length = np.where(vertical, floorplan.core_height, floorplan.core_width)
        # Current only has to travel from a load to the nearest supply pad,
        # so the effective length is half the pad pitch (bounded by a
        # quarter of the span for pad-starved floorplans).
        effective_length = np.minimum(
            length / 4.0,
            np.where(
                vertical,
                self._pad_pitch(floorplan, True) / 2.0,
                self._pad_pitch(floorplan, False) / 2.0,
            ),
        )
        ir_width = _ir_width_array(sheet_resistance, effective_length, line_currents, ir_budget)
        em_width = params.em_safety_factor * line_currents / self.technology.jmax
        widths = np.maximum(np.maximum(ir_width, em_width), self.rules.min_width)
        return self.rules.legalize_widths(widths)

    @staticmethod
    def _pad_pitch(floorplan: Floorplan, vertical: bool) -> float:
        """Approximate pad pitch along a line direction from the pad count."""
        num_pads = len(floorplan.pads)
        span = floorplan.core_height if vertical else floorplan.core_width
        if num_pads <= 0:
            return span
        pads_per_side = max(1.0, np.sqrt(num_pads))
        return span / pads_per_side

    @staticmethod
    def technology_sheet_width(
        sheet_resistance: float, length: float, current: float, ir_budget: float
    ) -> float:
        """Implement eq. (1): ``w = rho * l * I / V_IR``.

        Raises:
            ValueError: If the IR budget is not positive.
        """
        if ir_budget <= 0:
            raise ValueError("ir_budget must be positive")
        return float(
            _ir_width_array(
                np.asarray(sheet_resistance, dtype=float),
                np.asarray(length, dtype=float),
                np.asarray(current, dtype=float),
                ir_budget,
            )
        )


def width_from_ir_budget(
    sheet_resistance: float, length: float, current: float, ir_budget: float
) -> float:
    """Module-level convenience wrapper around eq. (1)."""
    return AnalyticalSizer.technology_sheet_width(sheet_resistance, length, current, ir_budget)
