"""Batched, model-guided candidate search for the planner loop.

One iteration of the conventional flow used to pay one full analysis per
heuristic move.  The search layer turns that iteration into a *candidate
batch*: a set of alternative moves — width bumps on the worst stripes,
pitch-style reinforcement of a stripe direction, decap insertion — each
expressed on the frozen :class:`~repro.grid.compiled.CompiledGrid`
topology, so the whole batch is evaluated against the *single* cached
base factorization through the engine's low-rank incremental-update path
(Sherman–Morrison–Woodbury / base-preconditioned CG).  Many candidates
per factorization instead of one solve per move.

A :class:`CandidateRanker` — wrapping the repo's own
:class:`~repro.nn.regression.MultiTargetRegressor`, the paper's actual
contribution — can be layered in front: it predicts each candidate's
worst-drop improvement from cheap geometric features and prunes the
batch to the top-``m`` before any solve is paid.  Exact mode
(``ranker=None``) solves every candidate and doubles as the oracle that
generates the ranker's training data.

Move vocabulary (all rank-``k`` conductance deltas or RHS-only changes):

* **upsize** — widen the vertical / horizontal stripes nearest a
  hot-spot (singly or as a cross), the local fix a designer would apply;
* **pitch** — widen every ``stride``-th stripe of one direction: the
  frozen-topology equivalent of tightening that direction's pitch (the
  same added metal per unit length, without re-gridding);
* **decap** — place decoupling capacitance via
  :class:`~repro.design.decap.DecapPlanner` and model its static effect
  as per-node load relief (an RHS-only move: the matrix, and therefore
  the factorization, is untouched);
* **heuristic** — the one-move baseline resize itself, always included
  and never pruned, so the search degrades to the baseline in the worst
  case instead of below it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..grid.compiled import CompiledGrid
from ..grid.floorplan import Floorplan
from ..grid.technology import Technology
from ..nn.regression import MultiTargetRegressor, NotFittedError, RegressorConfig
from .decap import DecapPlan, DecapPlanner, DecapTechnology
from .rules import DesignRules

DECAP_TRANSIENT_FRACTION = 0.2
"""Modelled transient share of each block's switching current.

Static IR analysis has no time axis, so a committed decap is modelled as
relieving this fraction of the covered blocks' demand, scaled by the
decap plan's per-block coverage — the charge the decap supplies locally
during the transient window instead of drawing it through the grid.
"""

FEATURE_NAMES = (
    "total_width_increase",
    "relative_width_increase",
    "num_lines_changed",
    "distance_to_worst",
    "vertical_fraction",
    "worst_ir_drop",
    "is_decap",
    "load_relief",
)
"""Cheap per-candidate features the :class:`CandidateRanker` consumes."""


@dataclass(frozen=True)
class CandidateMove:
    """One candidate move of a planner search iteration.

    Attributes:
        kind: Move family (``heuristic`` / ``upsize`` / ``pitch`` /
            ``decap``).
        label: Human-readable move description.
        widths: Full legalised per-line width vector after the move.
        load_scale: Per-node multiplicative load relief for RHS-only
            (decap) moves; ``None`` for conductance moves.
        lines_changed: Number of lines whose width differs from the
            pre-move widths (0 for pure decap moves).
        protected: True for moves the ranker must never prune (the
            baseline heuristic move).
    """

    kind: str
    label: str
    widths: np.ndarray
    load_scale: np.ndarray | None = None
    lines_changed: int = 0
    protected: bool = False


@dataclass(frozen=True)
class CommittedMove:
    """Record of one committed search move (enough to replay it exactly).

    ``widths`` and ``loads`` are absolute, so a fresh-factorization
    oracle can rebuild and re-solve the committed design independently
    of the incremental chain that produced ``voltages``.
    """

    iteration: int
    kind: str
    label: str
    widths: np.ndarray
    loads: np.ndarray
    voltages: np.ndarray
    worst_ir_drop: float
    lines_changed: int


@dataclass(frozen=True)
class SearchConfig:
    """Knobs of the batched candidate search.

    Attributes:
        batch_width: Maximum number of candidates generated per
            iteration (the baseline heuristic move always fits).
        ranker: Fitted :class:`CandidateRanker` for model-guided
            pruning; ``None`` (exact mode) solves the whole batch and is
            the search's own oracle.
        prune_to: Candidates kept per batch in ranker mode; ``None``
            derives ``max(4, 2 * batch_width // 3)``.
        pitch_stride: Every ``stride``-th stripe of a direction is
            widened by a pitch move.
        hotspots: Number of distinct worst-drop locations that seed
            upsize candidates.
        use_decap: Generate the RHS-only decap-relief candidate.
    """

    batch_width: int = 12
    ranker: "CandidateRanker | None" = None
    prune_to: int | None = None
    pitch_stride: int = 4
    hotspots: int = 3
    use_decap: bool = True

    def __post_init__(self) -> None:
        if self.batch_width < 1:
            raise ValueError("batch_width must be at least 1")
        if self.prune_to is not None and self.prune_to < 1:
            raise ValueError("prune_to must be at least 1")
        if self.pitch_stride < 1:
            raise ValueError("pitch_stride must be at least 1")
        if self.hotspots < 1:
            raise ValueError("hotspots must be at least 1")

    @property
    def resolved_prune_to(self) -> int:
        """Batch size after ranker pruning."""
        if self.prune_to is not None:
            return self.prune_to
        return max(4, 2 * self.batch_width // 3)


@dataclass
class SearchStats:
    """Counters and artefacts of one batched-search plan.

    The four counters are the contract the CLI, the planner benchmark
    and ``check_results.py`` report: every generated candidate is either
    pruned (by the ranker, before any solve) or solved; committed moves
    are the solved candidates that won their iteration.
    """

    candidates_generated: int = 0
    candidates_pruned: int = 0
    candidates_solved: int = 0
    moves_committed: int = 0
    ranker_used: bool = False
    committed: list[CommittedMove] = field(default_factory=list)
    decap_plan: DecapPlan | None = None
    training_features: list[np.ndarray] = field(default_factory=list)
    training_improvements: list[float] = field(default_factory=list)

    def training_data(self) -> tuple[np.ndarray, np.ndarray]:
        """(features, improvements) observed by the solved candidates.

        Exact-mode searches generate their own ranker training data: one
        row per solved candidate, labelled with the worst-drop
        improvement its solve actually measured.
        """
        if not self.training_features:
            return np.zeros((0, len(FEATURE_NAMES))), np.zeros(0)
        return (
            np.vstack(self.training_features),
            np.asarray(self.training_improvements, dtype=float),
        )

    def as_record(self) -> dict:
        """JSON-ready counter record (the planner benchmark's contract)."""
        return {
            "candidates_generated": self.candidates_generated,
            "candidates_pruned": self.candidates_pruned,
            "candidates_solved": self.candidates_solved,
            "moves_committed": self.moves_committed,
            "ranker_used": self.ranker_used,
            "committed_kinds": [move.kind for move in self.committed],
        }


class CandidateRanker:
    """NN ranker predicting per-candidate worst-drop improvement.

    Wraps an :class:`~repro.nn.regression.MultiTargetRegressor` behind
    the small contract the search loop needs: ``fit`` on
    ``(features, improvements)`` rows (volts of worst-drop reduction —
    exactly what :meth:`SearchStats.training_data` returns), then
    ``select`` the most promising candidates of a batch before any
    solve is paid.  The object is picklable once fitted, so a ranker
    survives :class:`~repro.analysis.executors.ProcessShardedExecutor`
    workers.

    Args:
        regressor: Pre-built (possibly pre-trained) regressor; a fresh
            one with ``config`` is created when omitted.
        config: Regressor configuration for the default regressor.
    """

    feature_names = FEATURE_NAMES

    def __init__(
        self,
        regressor: MultiTargetRegressor | None = None,
        config: RegressorConfig | None = None,
    ) -> None:
        self.regressor = regressor or MultiTargetRegressor(
            config or RegressorConfig.fast(epochs=120)
        )

    @property
    def is_fitted(self) -> bool:
        """True once the underlying regressor has been trained."""
        return self.regressor.is_fitted

    def fit(self, features: np.ndarray, improvements: np.ndarray):
        """Train on observed ``(features, improvement)`` rows."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        if features.shape[1] != len(FEATURE_NAMES):
            raise ValueError(
                f"expected {len(FEATURE_NAMES)} features per candidate, "
                f"got {features.shape[1]}"
            )
        return self.regressor.fit(features, np.asarray(improvements, dtype=float))

    def predict_improvement(self, features: np.ndarray) -> np.ndarray:
        """Predicted worst-drop improvement (volts) per candidate row."""
        if not self.is_fitted:
            raise NotFittedError("the candidate ranker has not been fitted")
        return self.regressor.predict(np.atleast_2d(features))[:, 0]

    def select(
        self, candidates: list[CandidateMove], features: np.ndarray, keep: int
    ) -> list[int]:
        """Indices of the candidates to solve, best predicted first kept.

        Protected candidates (the baseline heuristic move) are always
        selected and do not count against ``keep``'s exploration budget
        beyond their own slot.
        """
        predicted = self.predict_improvement(features)
        protected = [i for i, cand in enumerate(candidates) if cand.protected]
        ranked = sorted(
            (i for i in range(len(candidates)) if i not in protected),
            key=lambda i: (-predicted[i], i),
        )
        kept = protected + ranked[: max(keep - len(protected), 0)]
        return sorted(kept)


# ----------------------------------------------------------------------
# Candidate generation
# ----------------------------------------------------------------------
def _legalized_scale(
    widths: np.ndarray, lines: np.ndarray, factor: float, rules: DesignRules
) -> tuple[np.ndarray, int]:
    """Scale ``lines`` of ``widths`` by ``factor`` and legalise; count moves."""
    new_widths = widths.copy()
    changed = 0
    for line_id in np.asarray(lines, dtype=int):
        legal = rules.legalize_width(new_widths[line_id] * factor)
        if legal > new_widths[line_id]:
            new_widths[line_id] = legal
            changed += 1
    return new_widths, changed


def decap_load_scale(
    floorplan: Floorplan,
    technology: Technology,
    compiled: CompiledGrid,
    decap_technology: DecapTechnology | None = None,
    transient_fraction: float = DECAP_TRANSIENT_FRACTION,
) -> tuple[np.ndarray, DecapPlan] | None:
    """Per-node load-relief scale of a decap plan, or ``None``.

    Runs the greedy :class:`~repro.design.decap.DecapPlanner` and lowers
    each covered block's node currents by ``transient_fraction`` times
    the block's coverage — the static proxy of the transient charge the
    decap supplies locally.  Returns ``None`` when the floorplan has no
    blocks to protect or no relief is achievable.
    """
    planner = DecapPlanner(technology, decap_technology)
    plan = planner.plan(floorplan)
    if not plan.placements:
        return None
    placed = plan.capacitance_by_block
    nodes_by_block = compiled.load_nodes_by_block()
    scale = np.ones(compiled.num_nodes, dtype=float)
    relieved = False
    for block in floorplan.iter_blocks():
        required = planner.decap_technology.required_capacitance(block.switching_current)
        if required <= 0.0:
            continue
        coverage = min(placed.get(block.name, 0.0) / required, 1.0)
        nodes = nodes_by_block.get(block.name)
        if coverage <= 0.0 or nodes is None or nodes.size == 0:
            continue
        scale[nodes] *= 1.0 - transient_fraction * coverage
        relieved = True
    if not relieved:
        return None
    return scale, plan


def generate_candidates(
    *,
    widths: np.ndarray,
    baseline_widths: np.ndarray,
    topology,
    compiled: CompiledGrid,
    drops: np.ndarray,
    rules: DesignRules,
    upsize_factor: float,
    config: SearchConfig,
    load_scale: np.ndarray | None = None,
) -> list[CandidateMove]:
    """Build one iteration's candidate batch (capped at ``batch_width``).

    Every candidate starts from ``baseline_widths`` — the one-move
    loop's exact heuristic resize (EM fixes included) — and adds its
    own reinforcement on top: an extra hot-spot upsize, a pitch-style
    mesh widening, or decap load relief.  Because each candidate is a
    superset of the baseline move, whichever one the search commits is
    at least as strong as the one-move step from the same state, so the
    batched search never falls behind the heuristic loop.  The plain
    baseline move itself is always first and marked protected (it is
    never pruned, and is the fallback commit).

    Args:
        widths: Current per-line widths (pre-move).
        baseline_widths: The full one-move heuristic resize result.
        topology: Stripe topology.
        compiled: Current compiled grid (hot-spot geometry source).
        drops: Per-node IR drop of the current design, volts.
        rules: Design rules for width legalisation.
        upsize_factor: The planner's multiplicative step.
        config: Search configuration.
        load_scale: Decap relief vector (with its plan already recorded
            by the caller); ``None`` disables the decap candidate.
    """
    candidates: list[CandidateMove] = []
    seen: set[bytes] = set()

    def add(kind: str, label: str, new_widths: np.ndarray,
            scale: np.ndarray | None = None, protected: bool = False) -> None:
        if len(candidates) >= config.batch_width and not protected:
            return
        changed = int(np.count_nonzero(new_widths != widths))
        if changed == 0 and scale is None:
            return
        key = new_widths.tobytes() + (b"decap" if scale is not None else b"")
        if key in seen:
            return
        seen.add(key)
        candidates.append(
            CandidateMove(
                kind=kind,
                label=label,
                widths=new_widths,
                load_scale=scale,
                lines_changed=changed,
                protected=protected,
            )
        )

    add("heuristic", "one-move baseline resize", baseline_widths, protected=True)

    # Hot spots: the worst-drop nodes, deduplicated by their nearest
    # (vertical, horizontal) stripe pair so each seeds a distinct fix.
    v_positions = np.asarray(topology.vertical_positions)
    h_positions = np.asarray(topology.horizontal_positions)
    order = np.argsort(drops)[::-1]
    spots: list[tuple[int, int]] = []
    for node in order[: 16 * config.hotspots]:
        vi = int(np.argmin(np.abs(v_positions - compiled.node_x[node])))
        hi = int(np.argmin(np.abs(h_positions - compiled.node_y[node])))
        if (vi, hi) not in spots:
            spots.append((vi, hi))
        if len(spots) >= config.hotspots:
            break

    for rank, (vi, hi) in enumerate(spots):
        v_line = np.asarray([vi])
        h_line = np.asarray([topology.num_vertical + hi])
        cross = np.asarray([vi, topology.num_vertical + hi])
        for lines, tag in ((cross, "cross"), (v_line, "v"), (h_line, "h")):
            new_widths, _ = _legalized_scale(baseline_widths, lines, upsize_factor, rules)
            add("upsize", f"hotspot{rank} {tag} x{upsize_factor:g}", new_widths)
        if rank == 0:
            aggressive = upsize_factor * upsize_factor
            new_widths, _ = _legalized_scale(baseline_widths, cross, aggressive, rules)
            add("upsize", f"hotspot0 cross x{aggressive:g}", new_widths)

    # Pitch-style reinforcement: widen every stride-th stripe of one
    # direction (the frozen-topology stand-in for tightening its pitch).
    stride = config.pitch_stride
    v_mesh = np.arange(0, topology.num_vertical, stride)
    h_mesh = topology.num_vertical + np.arange(0, topology.num_horizontal, stride)
    for lines, tag in ((v_mesh, "vertical"), (h_mesh, "horizontal")):
        new_widths, _ = _legalized_scale(baseline_widths, lines, upsize_factor, rules)
        add("pitch", f"{tag} mesh /{stride} x{upsize_factor:g}", new_widths)

    if config.use_decap and load_scale is not None:
        add("decap", "decap load relief", baseline_widths, scale=load_scale)

    return candidates


def candidate_features(
    candidates: list[CandidateMove],
    *,
    widths: np.ndarray,
    topology,
    compiled: CompiledGrid,
    worst_x: float,
    worst_y: float,
    worst_ir_drop: float,
    loads: np.ndarray,
) -> np.ndarray:
    """Feature matrix (one row per candidate, :data:`FEATURE_NAMES` order).

    Everything here is array arithmetic on data the loop already holds —
    stripe geometry, the current drop map's worst location, the load
    vector — so ranking a batch costs microseconds, not solves.
    """
    v_positions = np.asarray(topology.vertical_positions)
    h_positions = np.asarray(topology.horizontal_positions)
    extent = max(
        float(v_positions.max() - v_positions.min()) if v_positions.size > 1 else 1.0,
        float(h_positions.max() - h_positions.min()) if h_positions.size > 1 else 1.0,
        1e-12,
    )
    rows = np.zeros((len(candidates), len(FEATURE_NAMES)), dtype=float)
    for row, cand in enumerate(candidates):
        delta = cand.widths - widths
        changed = np.flatnonzero(delta != 0.0)
        total_increase = float(delta[changed].sum()) if changed.size else 0.0
        relative = (
            float((delta[changed] / widths[changed]).sum()) if changed.size else 0.0
        )
        if changed.size:
            distances = np.empty(changed.size, dtype=float)
            for k, line_id in enumerate(changed):
                if line_id < topology.num_vertical:
                    distances[k] = abs(v_positions[line_id] - worst_x)
                else:
                    distances[k] = abs(
                        h_positions[line_id - topology.num_vertical] - worst_y
                    )
            distance = float(distances.min()) / extent
            vertical_fraction = float(
                np.count_nonzero(changed < topology.num_vertical) / changed.size
            )
        else:
            distance = 0.0
            vertical_fraction = 0.0
        relief = 0.0
        if cand.load_scale is not None:
            relief = float((loads * (1.0 - cand.load_scale)).sum())
        rows[row] = (
            total_increase,
            relative,
            float(changed.size),
            distance,
            vertical_fraction,
            worst_ir_drop,
            1.0 if cand.load_scale is not None else 0.0,
            relief,
        )
    return rows
