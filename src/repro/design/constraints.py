"""Reliability constraints for power-grid design.

Collects the three constraint families of the paper's Section III into a
single object the planner and the DL framework share:

* the worst-case **IR-drop** margin (a fraction of Vdd),
* the **electromigration** current-density limit ``I_i / w_i <= Jmax``
  (eq. 4), and
* the **core-width** budget, eq. (3): the sum of line widths and spacings
  along one direction must fit inside ``Wcore``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.em import EMReport
from ..analysis.irdrop import IRDropResult
from ..grid.technology import Technology
from .rules import DesignRules


@dataclass(frozen=True)
class ReliabilityConstraints:
    """The reliability targets a power-grid design must satisfy.

    Attributes:
        ir_drop_limit: Allowed worst-case IR drop in volts.
        jmax: EM current-density limit in A/um.
        core_width: Core width ``Wcore`` in um (for the eq. 3 budget).
        core_height: Core height in um.
    """

    ir_drop_limit: float
    jmax: float
    core_width: float
    core_height: float

    def __post_init__(self) -> None:
        if self.ir_drop_limit <= 0:
            raise ValueError("ir_drop_limit must be positive")
        if self.jmax <= 0:
            raise ValueError("jmax must be positive")
        if self.core_width <= 0 or self.core_height <= 0:
            raise ValueError("core dimensions must be positive")

    @classmethod
    def from_technology(
        cls, technology: Technology, core_width: float, core_height: float
    ) -> "ReliabilityConstraints":
        """Derive the constraints from a technology's budgets."""
        return cls(
            ir_drop_limit=technology.ir_drop_limit,
            jmax=technology.jmax,
            core_width=core_width,
            core_height=core_height,
        )

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def ir_drop_satisfied(self, result: IRDropResult) -> bool:
        """True if the worst-case IR drop is within the margin."""
        return result.worst_ir_drop <= self.ir_drop_limit

    def em_satisfied(self, report: EMReport) -> bool:
        """True if the EM check found no violations."""
        return report.passed

    def core_budget_satisfied(
        self, widths: np.ndarray | list[float], rules: DesignRules, vertical: bool = True
    ) -> bool:
        """Check the eq. (3) budget for one routing direction.

        ``sum(w_i) + sum(s_i) <= Wcore`` with the minimum spacing as ``s_i``.

        Args:
            widths: Widths of the parallel lines in the chosen direction.
            rules: Design rules supplying the minimum spacing.
            vertical: If True, the lines run vertically and the relevant
                budget is the core *width*; otherwise the core height.
        """
        widths = np.asarray(widths, dtype=float)
        budget = self.core_width if vertical else self.core_height
        occupied = float(np.sum(widths) + rules.min_spacing * len(widths))
        return occupied <= budget

    def evaluate(
        self,
        ir_result: IRDropResult,
        em_report: EMReport,
        vertical_widths: np.ndarray | list[float],
        horizontal_widths: np.ndarray | list[float],
        rules: DesignRules,
    ) -> "ConstraintEvaluation":
        """Evaluate all constraint families at once."""
        return ConstraintEvaluation(
            ir_drop_ok=self.ir_drop_satisfied(ir_result),
            em_ok=self.em_satisfied(em_report),
            vertical_budget_ok=self.core_budget_satisfied(vertical_widths, rules, vertical=True),
            horizontal_budget_ok=self.core_budget_satisfied(
                horizontal_widths, rules, vertical=False
            ),
            worst_ir_drop=ir_result.worst_ir_drop,
            ir_drop_limit=self.ir_drop_limit,
            worst_current_density=em_report.worst_density,
            jmax=self.jmax,
        )


@dataclass(frozen=True)
class ConstraintEvaluation:
    """Result of evaluating every reliability constraint on one design.

    Attributes:
        ir_drop_ok: Worst-case IR drop within the margin.
        em_ok: No EM current-density violations.
        vertical_budget_ok: Vertical lines fit in the core-width budget.
        horizontal_budget_ok: Horizontal lines fit in the core-height budget.
        worst_ir_drop: Observed worst-case IR drop in volts.
        ir_drop_limit: The IR-drop limit that was checked against.
        worst_current_density: Observed worst current density in A/um.
        jmax: The EM limit that was checked against.
    """

    ir_drop_ok: bool
    em_ok: bool
    vertical_budget_ok: bool
    horizontal_budget_ok: bool
    worst_ir_drop: float
    ir_drop_limit: float
    worst_current_density: float
    jmax: float

    @property
    def all_satisfied(self) -> bool:
        """True if every constraint family is satisfied."""
        return (
            self.ir_drop_ok
            and self.em_ok
            and self.vertical_budget_ok
            and self.horizontal_budget_ok
        )

    @property
    def ir_drop_slack(self) -> float:
        """Remaining IR-drop margin in volts (negative when violated)."""
        return self.ir_drop_limit - self.worst_ir_drop

    @property
    def em_slack(self) -> float:
        """Remaining EM margin in A/um (negative when violated)."""
        return self.jmax - self.worst_current_density
