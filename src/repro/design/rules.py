"""Design rules for power-grid line sizing.

Power-grid stripes must respect the metal layer's minimum and maximum width,
the minimum spacing to the neighbouring stripe, and — because eq. (3) of the
paper ties the sum of widths and spacings to the core width ``Wcore`` — an
upper bound on how much of the core the power routing may consume (the
"metal utilisation" budget that the paper's over-design discussion refers
to).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid.technology import MetalLayerSpec, Technology


@dataclass(frozen=True)
class DesignRules:
    """Sizing rules applied to every power-grid line.

    Attributes:
        min_width: Minimum legal line width in um.
        max_width: Maximum legal line width in um.
        min_spacing: Minimum spacing between adjacent lines in um.
        width_step: Manufacturing grid for widths in um; legalised widths are
            rounded up to a multiple of this step.
        max_utilisation: Maximum fraction of the core width that all parallel
            lines together may occupy (paper eq. 3 rearranged as a budget).
    """

    min_width: float
    max_width: float
    min_spacing: float
    width_step: float = 0.05
    max_utilisation: float = 0.35

    def __post_init__(self) -> None:
        if self.min_width <= 0:
            raise ValueError("min_width must be positive")
        if self.max_width < self.min_width:
            raise ValueError("max_width must be >= min_width")
        if self.min_spacing <= 0:
            raise ValueError("min_spacing must be positive")
        if self.width_step <= 0:
            raise ValueError("width_step must be positive")
        if not 0 < self.max_utilisation <= 1:
            raise ValueError("max_utilisation must be in (0, 1]")

    @classmethod
    def from_layer(
        cls, layer: MetalLayerSpec, width_step: float = 0.05, max_utilisation: float = 0.35
    ) -> "DesignRules":
        """Derive design rules from a metal-layer specification."""
        return cls(
            min_width=layer.min_width,
            max_width=layer.max_width,
            min_spacing=layer.min_spacing,
            width_step=width_step,
            max_utilisation=max_utilisation,
        )

    @classmethod
    def from_technology(
        cls, technology: Technology, width_step: float = 0.05, max_utilisation: float = 0.35
    ) -> "DesignRules":
        """Derive rules covering both power layers of a technology.

        The tightest minimum width and the loosest maximum width across the
        power layers are used so that a single width vector can legally drive
        both routing directions.
        """
        min_width = max(layer.min_width for layer in technology.layers)
        max_width = min(layer.max_width for layer in technology.layers)
        min_spacing = max(layer.min_spacing for layer in technology.layers)
        return cls(
            min_width=min_width,
            max_width=max_width,
            min_spacing=min_spacing,
            width_step=width_step,
            max_utilisation=max_utilisation,
        )

    # ------------------------------------------------------------------
    # Legalisation
    # ------------------------------------------------------------------
    def legalize_width(self, width: float) -> float:
        """Clamp a width into the legal range and snap it up to the width grid."""
        clamped = min(max(width, self.min_width), self.max_width)
        steps = np.ceil(round(clamped / self.width_step, 9))
        snapped = steps * self.width_step
        return float(min(snapped, self.max_width))

    def legalize_widths(self, widths: np.ndarray | list[float]) -> np.ndarray:
        """Vectorised :meth:`legalize_width`."""
        array = np.asarray(widths, dtype=float)
        clamped = np.clip(array, self.min_width, self.max_width)
        snapped = np.ceil(np.round(clamped / self.width_step, 9)) * self.width_step
        return np.minimum(snapped, self.max_width)

    def routing_utilisation(self, widths: np.ndarray | list[float], core_width: float) -> float:
        """Fraction of the core width consumed by the given parallel lines."""
        if core_width <= 0:
            raise ValueError("core_width must be positive")
        return float(np.sum(np.asarray(widths, dtype=float)) / core_width)

    def check_utilisation(self, widths: np.ndarray | list[float], core_width: float) -> bool:
        """True if the lines fit inside the utilisation budget."""
        return self.routing_utilisation(widths, core_width) <= self.max_utilisation

    def max_line_count(self, core_width: float, width: float) -> int:
        """Maximum number of lines of ``width`` that fit across ``core_width``.

        Implements the pitch-based version of paper eq. (6):
        ``#PG lines = Wcore / (w + s)`` rounded down, with at least one line.
        """
        if core_width <= 0:
            raise ValueError("core_width must be positive")
        legal = self.legalize_width(width)
        pitch = legal + self.min_spacing
        return max(1, int(core_width // pitch))
