"""Conventional iterative power planner (the paper's baseline flow, Fig. 1).

The conventional flow sizes the grid analytically, builds the network, runs
the full IR-drop analysis and the EM check, and — whenever a margin is
violated — upsizes the offending lines and repeats.  The loop is exactly the
"Change Design in Power Grid" iteration of the paper's Fig. 1, and its
convergence time (dominated by the repeated sparse solves) is what Table IV
compares PowerPlanningDL against.

The planner's converged per-line widths are also the *golden* labels used to
train the PowerPlanningDL width predictor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..analysis import SolverMethod
from ..analysis.currents import line_currents, line_currents_from_voltages
from ..analysis.em import EMChecker, EMReport
from ..analysis.engine import ENGINE_METHOD, BatchedAnalysisEngine
from ..analysis.irdrop import IRDropAnalyzer, IRDropResult
from ..analysis.solvers import UpdatePolicy
from ..grid.builder import GridBuilder, GridTopology
from ..grid.compiled import CompiledGrid
from ..grid.floorplan import Floorplan
from ..grid.network import PowerGridNetwork
from ..grid.technology import Technology
from .constraints import ConstraintEvaluation, ReliabilityConstraints
from .rules import DesignRules
from .search import (
    CommittedMove,
    SearchConfig,
    SearchStats,
    candidate_features,
    decap_load_scale,
    generate_candidates,
)
from .sizing import AnalyticalSizer, SizingParameters


@dataclass(frozen=True)
class _LoopAnalysis:
    """Array-level analysis state of one compiled-loop iteration.

    Carries exactly what the resize decision and the constraint evaluation
    consume — no name-keyed dictionaries are materialised inside the loop.
    """

    voltages: np.ndarray
    worst_index: int
    worst_ir_drop: float
    average_ir_drop: float
    analysis_time: float


@dataclass
class PlanningIteration:
    """Record of one iteration of the conventional design loop.

    Attributes:
        index: Iteration number, starting at 0 for the initial sizing.
        worst_ir_drop: Worst-case IR drop of this iteration's design, volts.
        em_violations: Number of EM-violating segments.
        lines_resized: Number of lines whose width was increased afterwards.
        analysis_time: Wall-clock time of the IR-drop analysis (matrix
            assembly + solve) in this iteration.
        build_time: Wall-clock time spent building the power-grid network
            (netlist construction) for this iteration.
    """

    index: int
    worst_ir_drop: float
    em_violations: int
    lines_resized: int
    analysis_time: float
    build_time: float = 0.0

    @property
    def step_time(self) -> float:
        """Total time of one analyse step: network build plus analysis."""
        return self.analysis_time + self.build_time


@dataclass
class PowerPlanResult:
    """Outcome of the conventional iterative power-planning flow.

    Attributes:
        benchmark: Name of the planned design.
        widths: Final per-line widths (vertical lines first), um.
        network: The final built power-grid network.
        ir_result: IR-drop analysis of the final design.
        em_report: EM report of the final design.
        evaluation: Constraint evaluation of the final design.
        iterations: Per-iteration history of the loop.
        converged: True if all constraints were met within the iteration cap.
        total_time: Total wall-clock time of the flow in seconds.
        analysis_time: Time spent in power-grid analysis only, in seconds —
            the quantity Table IV reports for the conventional approach.
        search: Candidate-search statistics (counters, committed moves,
            ranker training data) when the planner ran in batched-search
            mode; ``None`` for the one-move loops.
    """

    benchmark: str
    widths: np.ndarray
    network: PowerGridNetwork
    ir_result: IRDropResult
    em_report: EMReport
    evaluation: ConstraintEvaluation
    iterations: list[PlanningIteration]
    converged: bool
    total_time: float
    analysis_time: float
    search: SearchStats | None = None

    @property
    def num_iterations(self) -> int:
        """Number of design-loop iterations that were executed."""
        return len(self.iterations)


class ConventionalPowerPlanner:
    """Iterative analyse-and-resize power planner (baseline).

    Args:
        technology: Technology parameters.
        rules: Design rules; derived from the technology when omitted.
        constraints: Reliability targets; derived from the technology and the
            floorplan when omitted at :meth:`plan` time.
        sizing_parameters: Knobs of the analytical initial sizing.
        max_iterations: Cap on the number of resize iterations.
        upsize_factor: Multiplicative width increase applied to violating
            lines in each iteration.
        analyzer: IR-drop backend; defaults to a
            :class:`~repro.analysis.engine.BatchedAnalysisEngine`, whose
            vectorised assembly and factorization cache speed up the
            repeated analyses of the design loop.  A legacy
            :class:`IRDropAnalyzer` is also accepted.
        use_compiled_loop: When True (the default) and the analyzer is a
            :class:`BatchedAnalysisEngine`, the resize loop stays entirely
            in compiled-array land: the grid is built once with
            :meth:`~repro.grid.builder.GridBuilder.build_compiled` and each
            iteration only rewrites the stripe conductances via
            :meth:`~repro.grid.builder.GridBuilder.resize_compiled` —
            no object-graph rebuild, no full recompile.  Set to False to
            force the legacy rebuild loop (kept as the equivalence oracle).
        solver: Solver backend policy for the default engine — a name
            from :data:`~repro.analysis.solvers.SOLVER_NAMES` or ``None``
            for the environment default.  Ignored when ``analyzer`` is
            passed explicitly.
        incremental_updates: When True (the default), each resize
            iteration of the compiled loop is solved as a low-rank
            incremental update of the previous iteration's cached
            factorization instead of a fresh factorization (the
            analyse–resize fast path).  Set to False for the
            fresh-factorization oracle loop.  Ignored when ``analyzer``
            is passed explicitly.
        search: Enable the batched candidate search: each iteration
            generates a batch of alternative moves, evaluates them all
            against the single cached base factorization through the
            incremental-update path, and commits the best.  Pass True
            for the defaults or a :class:`~repro.design.search.SearchConfig`
            (e.g. with a fitted
            :class:`~repro.design.search.CandidateRanker` for
            model-guided pruning).  Requires the compiled loop and an
            engine analyzer.
    """

    def __init__(
        self,
        technology: Technology,
        rules: DesignRules | None = None,
        sizing_parameters: SizingParameters | None = None,
        max_iterations: int = 10,
        upsize_factor: float = 1.25,
        analyzer: IRDropAnalyzer | BatchedAnalysisEngine | None = None,
        use_compiled_loop: bool = True,
        solver: str | None = None,
        incremental_updates: bool = True,
        search: bool | SearchConfig = False,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if upsize_factor <= 1.0:
            raise ValueError("upsize_factor must be greater than 1")
        self.technology = technology
        self.rules = rules or DesignRules.from_technology(technology)
        self.sizer = AnalyticalSizer(technology, self.rules, sizing_parameters)
        self.max_iterations = max_iterations
        self.upsize_factor = upsize_factor
        if isinstance(search, SearchConfig):
            self.search_config: SearchConfig | None = search
        else:
            self.search_config = SearchConfig() if search else None
        # Each resize iteration changes conductances (a new fingerprint), so
        # a deep factorization cache would only pin dead memory: keep one.
        # One entry suffices for the incremental path too — every update
        # entry carries its own reference to the original direct factors.
        # The candidate search holds two: the shared base of the current
        # batch plus the candidate in flight.  Its accumulated deltas
        # (many commits, all updating the original factors) routinely
        # pass the default rank crossover while the base-preconditioned
        # CG still converges well — widths only grow, so the delta is
        # SPD — hence the full-range crossover; divergence still falls
        # back to a fresh factorization.
        if analyzer is not None:
            self.analyzer = analyzer
        elif self.search_config is not None:
            self.analyzer = BatchedAnalysisEngine(
                cache_size=2,
                solver=solver,
                incremental_updates=incremental_updates,
                update_policy=UpdatePolicy(crossover_fraction=1.0, maxiter=512),
            )
        else:
            self.analyzer = BatchedAnalysisEngine(
                cache_size=1, solver=solver, incremental_updates=incremental_updates
            )
        self.use_compiled_loop = use_compiled_loop
        self.em_checker = EMChecker(technology)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def plan(
        self,
        floorplan: Floorplan,
        topology: GridTopology,
        constraints: ReliabilityConstraints | None = None,
        initial_widths: np.ndarray | None = None,
    ) -> PowerPlanResult:
        """Run the full conventional flow on one floorplan.

        Args:
            floorplan: The design's floorplan (blocks, pads, core size).
            topology: Power-grid stripe topology.
            constraints: Reliability targets; derived from the technology if
                omitted.
            initial_widths: Optional starting widths (e.g. a DL prediction to
                be refined); the analytical sizer is used when omitted.

        Returns:
            The converged (or iteration-capped) :class:`PowerPlanResult`.
        """
        constraints = constraints or ReliabilityConstraints.from_technology(
            self.technology, floorplan.core_width, floorplan.core_height
        )
        start = time.perf_counter()

        if initial_widths is None:
            widths = self.sizer.size(floorplan, topology)
        else:
            widths = self.rules.legalize_widths(initial_widths)
            if widths.shape != (topology.num_lines,):
                raise ValueError(
                    f"initial_widths must have length {topology.num_lines}"
                )

        compiled_capable = self.use_compiled_loop and isinstance(
            self.analyzer, BatchedAnalysisEngine
        )
        if self.search_config is not None:
            if not compiled_capable:
                raise ValueError(
                    "search mode requires the compiled loop and a "
                    "BatchedAnalysisEngine analyzer"
                )
            return self._plan_search(floorplan, topology, constraints, widths, start)
        if compiled_capable:
            return self._plan_compiled(floorplan, topology, constraints, widths, start)
        return self._plan_legacy(floorplan, topology, constraints, widths, start)

    # ------------------------------------------------------------------
    # Legacy rebuild loop (equivalence oracle)
    # ------------------------------------------------------------------
    def _plan_legacy(
        self,
        floorplan: Floorplan,
        topology: GridTopology,
        constraints: ReliabilityConstraints,
        widths: np.ndarray,
        start: float,
    ) -> PowerPlanResult:
        """Rebuild-per-iteration loop: network rebuild + full recompile."""
        builder = GridBuilder(self.technology)
        analysis_time = 0.0
        iterations: list[PlanningIteration] = []
        build_start = time.perf_counter()
        network = builder.build(floorplan, topology, widths)
        build_time = time.perf_counter() - build_start
        ir_result = self.analyzer.analyze(network)
        em_report = self.em_checker.check(network, ir_result)
        analysis_time += ir_result.analysis_time
        evaluation = self._evaluate(constraints, ir_result, em_report, widths, topology)

        for iteration in range(self.max_iterations):
            resized = 0
            if not evaluation.all_satisfied:
                widths, resized = self._resize(
                    widths, topology, network, ir_result, em_report, constraints
                )
            iterations.append(
                PlanningIteration(
                    index=iteration,
                    worst_ir_drop=ir_result.worst_ir_drop,
                    em_violations=len(em_report.violations),
                    lines_resized=resized,
                    analysis_time=ir_result.analysis_time,
                    build_time=build_time,
                )
            )
            if evaluation.all_satisfied or resized == 0:
                break
            build_start = time.perf_counter()
            network = builder.build(floorplan, topology, widths)
            build_time = time.perf_counter() - build_start
            ir_result = self.analyzer.analyze(network)
            em_report = self.em_checker.check(network, ir_result)
            analysis_time += ir_result.analysis_time
            evaluation = self._evaluate(constraints, ir_result, em_report, widths, topology)

        total_time = time.perf_counter() - start
        return PowerPlanResult(
            benchmark=floorplan.name,
            widths=widths,
            network=network,
            ir_result=ir_result,
            em_report=em_report,
            evaluation=evaluation,
            iterations=iterations,
            converged=evaluation.all_satisfied,
            total_time=total_time,
            analysis_time=analysis_time,
        )

    # ------------------------------------------------------------------
    # Compiled-array loop (rebuild-free fast path)
    # ------------------------------------------------------------------
    def _analyze_compiled(
        self,
        engine: BatchedAnalysisEngine,
        compiled: CompiledGrid,
        loads: np.ndarray | None = None,
    ) -> _LoopAnalysis:
        """One engine solve plus the array-level reductions the loop needs."""
        analysis_start = time.perf_counter()
        voltages = engine.solve_voltages(compiled, loads)
        elapsed = time.perf_counter() - analysis_start
        drops = compiled.vdd - voltages
        worst_index = int(drops.argmax()) if drops.size else 0
        return _LoopAnalysis(
            voltages=voltages,
            worst_index=worst_index,
            worst_ir_drop=float(drops[worst_index]) if drops.size else 0.0,
            average_ir_drop=float(drops.mean()) if drops.size else 0.0,
            analysis_time=elapsed,
        )

    def _plan_compiled(
        self,
        floorplan: Floorplan,
        topology: GridTopology,
        constraints: ReliabilityConstraints,
        widths: np.ndarray,
        start: float,
    ) -> PowerPlanResult:
        """Rebuild-free loop: the grid is compiled once, then every resize
        iteration only rewrites the stripe conductances (shared topology,
        index maps and sparsity pattern) and re-solves through the engine.
        The converged design is materialised as an object-level network and
        a full :class:`IRDropResult` only once, at the end.
        """
        builder = GridBuilder(self.technology)
        engine = self.analyzer
        analysis_time = 0.0
        iterations: list[PlanningIteration] = []

        build_start = time.perf_counter()
        compiled = builder.build_compiled(floorplan, topology, widths)
        build_time = time.perf_counter() - build_start
        analysis = self._analyze_compiled(engine, compiled)
        em_report = self.em_checker.check_voltages(compiled, analysis.voltages)
        analysis_time += analysis.analysis_time
        evaluation = self._evaluate(constraints, analysis, em_report, widths, topology)

        for iteration in range(self.max_iterations):
            resized = 0
            if not evaluation.all_satisfied:
                widths, resized = self._resize_compiled(
                    widths, topology, compiled, analysis, em_report, constraints
                )
            iterations.append(
                PlanningIteration(
                    index=iteration,
                    worst_ir_drop=analysis.worst_ir_drop,
                    em_violations=len(em_report.violations),
                    lines_resized=resized,
                    analysis_time=analysis.analysis_time,
                    build_time=build_time,
                )
            )
            if evaluation.all_satisfied or resized == 0:
                break
            build_start = time.perf_counter()
            compiled = builder.resize_compiled(compiled, topology, widths)
            build_time = time.perf_counter() - build_start
            analysis = self._analyze_compiled(engine, compiled)
            em_report = self.em_checker.check_voltages(compiled, analysis.voltages)
            analysis_time += analysis.analysis_time
            evaluation = self._evaluate(constraints, analysis, em_report, widths, topology)

        # Materialise the object-level deliverables once, outside the loop:
        # the final network for downstream consumers and the full IR-drop
        # result, built straight from the already-solved voltages.
        network = builder.build(floorplan, topology, widths, name=floorplan.name)
        drops = compiled.vdd - analysis.voltages
        ir_result = IRDropResult(
            network_name=compiled.name,
            vdd=compiled.vdd,
            node_voltages=compiled.voltages_dict(analysis.voltages),
            node_ir_drop=compiled.voltages_dict(drops),
            worst_ir_drop=analysis.worst_ir_drop,
            worst_node=compiled.node_names[analysis.worst_index] if drops.size else "",
            average_ir_drop=analysis.average_ir_drop,
            analysis_time=analysis.analysis_time,
            solver_method=(
                SolverMethod.CG.value
                if compiled.num_unknowns > engine.direct_size_limit
                else ENGINE_METHOD
            ),
            solver_iterations=0,
        )
        total_time = time.perf_counter() - start
        return PowerPlanResult(
            benchmark=floorplan.name,
            widths=widths,
            network=network,
            ir_result=ir_result,
            em_report=em_report,
            evaluation=evaluation,
            iterations=iterations,
            converged=evaluation.all_satisfied,
            total_time=total_time,
            analysis_time=analysis_time,
        )

    # ------------------------------------------------------------------
    # Batched candidate search (model-guided fast path)
    # ------------------------------------------------------------------
    def _plan_search(
        self,
        floorplan: Floorplan,
        topology: GridTopology,
        constraints: ReliabilityConstraints,
        widths: np.ndarray,
        start: float,
    ) -> PowerPlanResult:
        """Batched search loop: each iteration generates a candidate batch,
        evaluates every kept candidate against the *single* cached base
        factorization via the engine's incremental-update path (each
        candidate is a rank-k conductance delta or an RHS-only load
        relief), and commits the best move.  A fitted ranker in the
        search config prunes the batch before any solve; without one the
        whole batch is solved (exact mode, the ranker's oracle).
        """
        builder = GridBuilder(self.technology)
        engine = self.analyzer
        config = self.search_config
        assert config is not None
        stats = SearchStats(ranker_used=config.ranker is not None)
        analysis_time = 0.0
        iterations: list[PlanningIteration] = []

        build_start = time.perf_counter()
        compiled = builder.build_compiled(floorplan, topology, widths)
        build_time = time.perf_counter() - build_start
        loads = compiled.base_loads.copy()

        relief = None
        if config.use_decap:
            relief = decap_load_scale(floorplan, self.technology, compiled)
            if relief is not None:
                stats.decap_plan = relief[1]
        decap_available = relief is not None

        analysis = self._analyze_compiled(engine, compiled, loads)
        em_report = self.em_checker.check_voltages(compiled, analysis.voltages)
        analysis_time += analysis.analysis_time
        evaluation = self._evaluate(constraints, analysis, em_report, widths, topology)

        for iteration in range(self.max_iterations):
            committed: CommittedMove | None = None
            best_clone: CompiledGrid | None = None
            best_build_time = 0.0
            batch_time = 0.0
            if not evaluation.all_satisfied:
                violating = em_report.violating_lines
                per_line = (
                    line_currents_from_voltages(compiled, analysis.voltages)
                    if violating
                    else {}
                )
                worst_x = float(compiled.node_x[analysis.worst_index])
                worst_y = float(compiled.node_y[analysis.worst_index])
                baseline_widths, _ = self._resize_core(
                    widths,
                    topology,
                    constraints,
                    violating_lines=violating,
                    per_line_current=per_line,
                    worst_ir_drop=analysis.worst_ir_drop,
                    worst_x=worst_x,
                    worst_y=worst_y,
                )
                candidates = generate_candidates(
                    widths=widths,
                    baseline_widths=baseline_widths,
                    topology=topology,
                    compiled=compiled,
                    drops=compiled.vdd - analysis.voltages,
                    rules=self.rules,
                    upsize_factor=self.upsize_factor,
                    config=config,
                    load_scale=relief[0] if decap_available else None,
                )
                stats.candidates_generated += len(candidates)
                features = candidate_features(
                    candidates,
                    widths=widths,
                    topology=topology,
                    compiled=compiled,
                    worst_x=worst_x,
                    worst_y=worst_y,
                    worst_ir_drop=analysis.worst_ir_drop,
                    loads=loads,
                )
                if config.ranker is not None:
                    kept = config.ranker.select(
                        candidates, features, config.resolved_prune_to
                    )
                else:
                    kept = list(range(len(candidates)))
                stats.candidates_pruned += len(candidates) - len(kept)

                best = None
                batch_start = time.perf_counter()
                for index in kept:
                    cand = candidates[index]
                    clone_start = time.perf_counter()
                    if np.array_equal(cand.widths, widths):
                        clone = compiled
                    else:
                        clone = builder.resize_compiled(compiled, topology, cand.widths)
                    clone_time = time.perf_counter() - clone_start
                    cand_loads = (
                        loads * cand.load_scale
                        if cand.load_scale is not None
                        else loads
                    )
                    voltages = engine.solve_voltages(clone, cand_loads)
                    cand_drops = clone.vdd - voltages
                    cand_worst = float(cand_drops.max()) if cand_drops.size else 0.0
                    stats.candidates_solved += 1
                    stats.training_features.append(features[index])
                    stats.training_improvements.append(
                        analysis.worst_ir_drop - cand_worst
                    )
                    if best is None or cand_worst < best[0]:
                        best = (cand_worst, index, clone, cand_loads, voltages, clone_time)
                batch_time = time.perf_counter() - batch_start

                if best is not None:
                    cand = candidates[best[1]]
                    committed = CommittedMove(
                        iteration=iteration,
                        kind=cand.kind,
                        label=cand.label,
                        widths=cand.widths.copy(),
                        loads=best[3].copy(),
                        voltages=best[4],
                        worst_ir_drop=best[0],
                        lines_changed=cand.lines_changed,
                    )
                    stats.committed.append(committed)
                    stats.moves_committed += 1
                    best_clone = best[2]
                    best_build_time = best[5]

            iterations.append(
                PlanningIteration(
                    index=iteration,
                    worst_ir_drop=analysis.worst_ir_drop,
                    em_violations=len(em_report.violations),
                    lines_resized=committed.lines_changed if committed else 0,
                    analysis_time=analysis.analysis_time,
                    build_time=build_time,
                )
            )
            if evaluation.all_satisfied or committed is None:
                break

            # Adopt the committed design.  Re-anchoring the committed
            # clone's factorization through the explicit update path
            # keeps the next batch updating an in-cache entry (the batch
            # itself may have evicted the winner's entry).
            if (
                best_clone is not compiled
                and engine.incremental_updates
                and compiled.num_unknowns <= engine.direct_size_limit
            ):
                engine.factor_update(compiled, best_clone)
            if committed.kind == "decap":
                decap_available = False
            widths = committed.widths
            loads = committed.loads
            compiled = best_clone
            build_time = best_build_time
            drops = compiled.vdd - committed.voltages
            analysis = _LoopAnalysis(
                voltages=committed.voltages,
                worst_index=int(drops.argmax()) if drops.size else 0,
                worst_ir_drop=committed.worst_ir_drop,
                average_ir_drop=float(drops.mean()) if drops.size else 0.0,
                analysis_time=batch_time,
            )
            analysis_time += batch_time
            em_report = self.em_checker.check_voltages(compiled, analysis.voltages)
            evaluation = self._evaluate(
                constraints, analysis, em_report, widths, topology
            )

        network = builder.build(floorplan, topology, widths, name=floorplan.name)
        drops = compiled.vdd - analysis.voltages
        ir_result = IRDropResult(
            network_name=compiled.name,
            vdd=compiled.vdd,
            node_voltages=compiled.voltages_dict(analysis.voltages),
            node_ir_drop=compiled.voltages_dict(drops),
            worst_ir_drop=analysis.worst_ir_drop,
            worst_node=compiled.node_names[analysis.worst_index] if drops.size else "",
            average_ir_drop=analysis.average_ir_drop,
            analysis_time=analysis.analysis_time,
            solver_method=(
                SolverMethod.CG.value
                if compiled.num_unknowns > engine.direct_size_limit
                else ENGINE_METHOD
            ),
            solver_iterations=0,
        )
        total_time = time.perf_counter() - start
        return PowerPlanResult(
            benchmark=floorplan.name,
            widths=widths,
            network=network,
            ir_result=ir_result,
            em_report=em_report,
            evaluation=evaluation,
            iterations=iterations,
            converged=evaluation.all_satisfied,
            total_time=total_time,
            analysis_time=analysis_time,
            search=stats,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _evaluate(
        self,
        constraints: ReliabilityConstraints,
        ir_result: IRDropResult | _LoopAnalysis,
        em_report: EMReport,
        widths: np.ndarray,
        topology: GridTopology,
    ) -> ConstraintEvaluation:
        vertical = widths[: topology.num_vertical]
        horizontal = widths[topology.num_vertical :]
        return constraints.evaluate(ir_result, em_report, vertical, horizontal, self.rules)

    def _resize(
        self,
        widths: np.ndarray,
        topology: GridTopology,
        network: PowerGridNetwork,
        ir_result: IRDropResult,
        em_report: EMReport,
        constraints: ReliabilityConstraints,
    ) -> tuple[np.ndarray, int]:
        """Legacy-loop resize: worst-node lookup through the object network."""
        violating = em_report.violating_lines
        per_line = line_currents(network, ir_result) if violating else {}
        worst = network.nodes[ir_result.worst_node]
        return self._resize_core(
            widths,
            topology,
            constraints,
            violating_lines=violating,
            per_line_current=per_line,
            worst_ir_drop=ir_result.worst_ir_drop,
            worst_x=worst.x,
            worst_y=worst.y,
        )

    def _resize_compiled(
        self,
        widths: np.ndarray,
        topology: GridTopology,
        compiled: CompiledGrid,
        analysis: _LoopAnalysis,
        em_report: EMReport,
        constraints: ReliabilityConstraints,
    ) -> tuple[np.ndarray, int]:
        """Compiled-loop resize: everything comes from the arrays."""
        violating = em_report.violating_lines
        per_line = (
            line_currents_from_voltages(compiled, analysis.voltages) if violating else {}
        )
        return self._resize_core(
            widths,
            topology,
            constraints,
            violating_lines=violating,
            per_line_current=per_line,
            worst_ir_drop=analysis.worst_ir_drop,
            worst_x=float(compiled.node_x[analysis.worst_index]),
            worst_y=float(compiled.node_y[analysis.worst_index]),
        )

    def _resize_core(
        self,
        widths: np.ndarray,
        topology: GridTopology,
        constraints: ReliabilityConstraints,
        *,
        violating_lines: set[int],
        per_line_current: dict[int, float],
        worst_ir_drop: float,
        worst_x: float,
        worst_y: float,
    ) -> tuple[np.ndarray, int]:
        """Upsize lines that violate the IR-drop or EM constraints.

        EM-violating lines are resized to at least the width the EM limit
        requires; when the worst-case IR drop exceeds the margin, the lines
        nearest the worst node (and their neighbours) are upsized by the
        planner's upsize factor.
        """
        new_widths, resized = self._em_fix_widths(
            widths, constraints, violating_lines, per_line_current
        )

        if worst_ir_drop > constraints.ir_drop_limit:
            v_positions = np.asarray(topology.vertical_positions)
            h_positions = np.asarray(topology.horizontal_positions)
            # Upsize the few lines closest to the worst-drop location in both
            # directions; this is the local fix a designer would apply.
            num_local = max(1, topology.num_vertical // 8)
            v_order = np.argsort(np.abs(v_positions - worst_x))[:num_local]
            h_order = np.argsort(np.abs(h_positions - worst_y))[:num_local]
            for index in v_order:
                line_id = int(index)
                legal = self.rules.legalize_width(new_widths[line_id] * self.upsize_factor)
                if legal > new_widths[line_id]:
                    new_widths[line_id] = legal
                    resized.add(line_id)
            for index in h_order:
                line_id = topology.num_vertical + int(index)
                legal = self.rules.legalize_width(new_widths[line_id] * self.upsize_factor)
                if legal > new_widths[line_id]:
                    new_widths[line_id] = legal
                    resized.add(line_id)

        return new_widths, len(resized)

    def _em_fix_widths(
        self,
        widths: np.ndarray,
        constraints: ReliabilityConstraints,
        violating_lines: set[int],
        per_line_current: dict[int, float],
    ) -> tuple[np.ndarray, set[int]]:
        """Widths after the EM-mandated upsizes only (no IR move).

        EM fixes are legality requirements, not search decisions: every
        search candidate builds on top of them.
        """
        new_widths = widths.copy()
        resized: set[int] = set()
        for line_id in violating_lines:
            required = per_line_current.get(line_id, 0.0) / constraints.jmax
            target = max(new_widths[line_id] * self.upsize_factor, required)
            legal = self.rules.legalize_width(target)
            if legal > new_widths[line_id]:
                new_widths[line_id] = legal
                resized.add(line_id)
        return new_widths, resized
