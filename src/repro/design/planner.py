"""Conventional iterative power planner (the paper's baseline flow, Fig. 1).

The conventional flow sizes the grid analytically, builds the network, runs
the full IR-drop analysis and the EM check, and — whenever a margin is
violated — upsizes the offending lines and repeats.  The loop is exactly the
"Change Design in Power Grid" iteration of the paper's Fig. 1, and its
convergence time (dominated by the repeated sparse solves) is what Table IV
compares PowerPlanningDL against.

The planner's converged per-line widths are also the *golden* labels used to
train the PowerPlanningDL width predictor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..analysis.currents import line_currents
from ..analysis.em import EMChecker, EMReport
from ..analysis.engine import BatchedAnalysisEngine
from ..analysis.irdrop import IRDropAnalyzer, IRDropResult
from ..grid.builder import GridBuilder, GridTopology
from ..grid.floorplan import Floorplan
from ..grid.network import PowerGridNetwork
from ..grid.technology import Technology
from .constraints import ConstraintEvaluation, ReliabilityConstraints
from .rules import DesignRules
from .sizing import AnalyticalSizer, SizingParameters


@dataclass
class PlanningIteration:
    """Record of one iteration of the conventional design loop.

    Attributes:
        index: Iteration number, starting at 0 for the initial sizing.
        worst_ir_drop: Worst-case IR drop of this iteration's design, volts.
        em_violations: Number of EM-violating segments.
        lines_resized: Number of lines whose width was increased afterwards.
        analysis_time: Wall-clock time of the IR-drop analysis (matrix
            assembly + solve) in this iteration.
        build_time: Wall-clock time spent building the power-grid network
            (netlist construction) for this iteration.
    """

    index: int
    worst_ir_drop: float
    em_violations: int
    lines_resized: int
    analysis_time: float
    build_time: float = 0.0

    @property
    def step_time(self) -> float:
        """Total time of one analyse step: network build plus analysis."""
        return self.analysis_time + self.build_time


@dataclass
class PowerPlanResult:
    """Outcome of the conventional iterative power-planning flow.

    Attributes:
        benchmark: Name of the planned design.
        widths: Final per-line widths (vertical lines first), um.
        network: The final built power-grid network.
        ir_result: IR-drop analysis of the final design.
        em_report: EM report of the final design.
        evaluation: Constraint evaluation of the final design.
        iterations: Per-iteration history of the loop.
        converged: True if all constraints were met within the iteration cap.
        total_time: Total wall-clock time of the flow in seconds.
        analysis_time: Time spent in power-grid analysis only, in seconds —
            the quantity Table IV reports for the conventional approach.
    """

    benchmark: str
    widths: np.ndarray
    network: PowerGridNetwork
    ir_result: IRDropResult
    em_report: EMReport
    evaluation: ConstraintEvaluation
    iterations: list[PlanningIteration]
    converged: bool
    total_time: float
    analysis_time: float

    @property
    def num_iterations(self) -> int:
        """Number of design-loop iterations that were executed."""
        return len(self.iterations)


class ConventionalPowerPlanner:
    """Iterative analyse-and-resize power planner (baseline).

    Args:
        technology: Technology parameters.
        rules: Design rules; derived from the technology when omitted.
        constraints: Reliability targets; derived from the technology and the
            floorplan when omitted at :meth:`plan` time.
        sizing_parameters: Knobs of the analytical initial sizing.
        max_iterations: Cap on the number of resize iterations.
        upsize_factor: Multiplicative width increase applied to violating
            lines in each iteration.
        analyzer: IR-drop backend; defaults to a
            :class:`~repro.analysis.engine.BatchedAnalysisEngine`, whose
            vectorised assembly and factorization cache speed up the
            repeated analyses of the design loop.  A legacy
            :class:`IRDropAnalyzer` is also accepted.
    """

    def __init__(
        self,
        technology: Technology,
        rules: DesignRules | None = None,
        sizing_parameters: SizingParameters | None = None,
        max_iterations: int = 10,
        upsize_factor: float = 1.25,
        analyzer: IRDropAnalyzer | BatchedAnalysisEngine | None = None,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if upsize_factor <= 1.0:
            raise ValueError("upsize_factor must be greater than 1")
        self.technology = technology
        self.rules = rules or DesignRules.from_technology(technology)
        self.sizer = AnalyticalSizer(technology, self.rules, sizing_parameters)
        self.max_iterations = max_iterations
        self.upsize_factor = upsize_factor
        # Each resize iteration changes conductances (a new fingerprint), so
        # a deep factorization cache would only pin dead memory: keep one.
        self.analyzer = analyzer or BatchedAnalysisEngine(cache_size=1)
        self.em_checker = EMChecker(technology)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def plan(
        self,
        floorplan: Floorplan,
        topology: GridTopology,
        constraints: ReliabilityConstraints | None = None,
        initial_widths: np.ndarray | None = None,
    ) -> PowerPlanResult:
        """Run the full conventional flow on one floorplan.

        Args:
            floorplan: The design's floorplan (blocks, pads, core size).
            topology: Power-grid stripe topology.
            constraints: Reliability targets; derived from the technology if
                omitted.
            initial_widths: Optional starting widths (e.g. a DL prediction to
                be refined); the analytical sizer is used when omitted.

        Returns:
            The converged (or iteration-capped) :class:`PowerPlanResult`.
        """
        constraints = constraints or ReliabilityConstraints.from_technology(
            self.technology, floorplan.core_width, floorplan.core_height
        )
        builder = GridBuilder(self.technology)
        start = time.perf_counter()
        analysis_time = 0.0

        if initial_widths is None:
            widths = self.sizer.size(floorplan, topology)
        else:
            widths = self.rules.legalize_widths(initial_widths)
            if widths.shape != (topology.num_lines,):
                raise ValueError(
                    f"initial_widths must have length {topology.num_lines}"
                )

        iterations: list[PlanningIteration] = []
        build_start = time.perf_counter()
        network = builder.build(floorplan, topology, widths)
        build_time = time.perf_counter() - build_start
        ir_result = self.analyzer.analyze(network)
        em_report = self.em_checker.check(network, ir_result)
        analysis_time += ir_result.analysis_time
        evaluation = self._evaluate(constraints, ir_result, em_report, widths, topology)

        for iteration in range(self.max_iterations):
            resized = 0
            if not evaluation.all_satisfied:
                widths, resized = self._resize(
                    widths, topology, network, ir_result, em_report, constraints
                )
            iterations.append(
                PlanningIteration(
                    index=iteration,
                    worst_ir_drop=ir_result.worst_ir_drop,
                    em_violations=len(em_report.violations),
                    lines_resized=resized,
                    analysis_time=ir_result.analysis_time,
                    build_time=build_time,
                )
            )
            if evaluation.all_satisfied or resized == 0:
                break
            build_start = time.perf_counter()
            network = builder.build(floorplan, topology, widths)
            build_time = time.perf_counter() - build_start
            ir_result = self.analyzer.analyze(network)
            em_report = self.em_checker.check(network, ir_result)
            analysis_time += ir_result.analysis_time
            evaluation = self._evaluate(constraints, ir_result, em_report, widths, topology)

        total_time = time.perf_counter() - start
        return PowerPlanResult(
            benchmark=floorplan.name,
            widths=widths,
            network=network,
            ir_result=ir_result,
            em_report=em_report,
            evaluation=evaluation,
            iterations=iterations,
            converged=evaluation.all_satisfied,
            total_time=total_time,
            analysis_time=analysis_time,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _evaluate(
        self,
        constraints: ReliabilityConstraints,
        ir_result: IRDropResult,
        em_report: EMReport,
        widths: np.ndarray,
        topology: GridTopology,
    ) -> ConstraintEvaluation:
        vertical = widths[: topology.num_vertical]
        horizontal = widths[topology.num_vertical :]
        return constraints.evaluate(ir_result, em_report, vertical, horizontal, self.rules)

    def _resize(
        self,
        widths: np.ndarray,
        topology: GridTopology,
        network: PowerGridNetwork,
        ir_result: IRDropResult,
        em_report: EMReport,
        constraints: ReliabilityConstraints,
    ) -> tuple[np.ndarray, int]:
        """Upsize lines that violate the IR-drop or EM constraints.

        EM-violating lines are resized to at least the width the EM limit
        requires; when the worst-case IR drop exceeds the margin, the lines
        nearest the worst node (and their neighbours) are upsized by the
        planner's upsize factor.
        """
        new_widths = widths.copy()
        resized: set[int] = set()

        violating = em_report.violating_lines
        per_line = line_currents(network, ir_result) if violating else {}
        for line_id in violating:
            required = per_line.get(line_id, 0.0) / constraints.jmax
            target = max(new_widths[line_id] * self.upsize_factor, required)
            legal = self.rules.legalize_width(target)
            if legal > new_widths[line_id]:
                new_widths[line_id] = legal
                resized.add(line_id)

        if ir_result.worst_ir_drop > constraints.ir_drop_limit:
            worst = network.nodes[ir_result.worst_node]
            v_positions = np.asarray(topology.vertical_positions)
            h_positions = np.asarray(topology.horizontal_positions)
            # Upsize the few lines closest to the worst-drop location in both
            # directions; this is the local fix a designer would apply.
            num_local = max(1, topology.num_vertical // 8)
            v_order = np.argsort(np.abs(v_positions - worst.x))[:num_local]
            h_order = np.argsort(np.abs(h_positions - worst.y))[:num_local]
            for index in v_order:
                line_id = int(index)
                legal = self.rules.legalize_width(new_widths[line_id] * self.upsize_factor)
                if legal > new_widths[line_id]:
                    new_widths[line_id] = legal
                    resized.add(line_id)
            for index in h_order:
                line_id = topology.num_vertical + int(index)
                legal = self.rules.legalize_width(new_widths[line_id] * self.upsize_factor)
                if legal > new_widths[line_id]:
                    new_widths[line_id] = legal
                    resized.add(line_id)

        return new_widths, len(resized)
