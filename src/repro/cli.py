"""Command-line interface for the PowerPlanningDL reproduction.

Installed as the ``powerplanningdl`` console script, the CLI exposes the
library's main flows to users who do not want to write Python:

* ``generate``  — write a synthetic IBM-style benchmark as a SPICE netlist;
* ``analyze``   — run the conventional static IR-drop analysis on a netlist;
* ``plan``      — run the conventional iterative planner on a benchmark;
* ``train``     — train the PowerPlanningDL width model on a benchmark and
  save it to disk;
* ``predict``   — load a trained model and predict the design (widths +
  IR drop) for a benchmark specification, optionally perturbed by gamma;
* ``sweep``     — stream a pad-voltage × load-perturbation mega-sweep
  through scenario sinks (quantiles, exceedance, top-k) in chunk-bounded
  memory.

All subcommands print human-readable tables and exit non-zero on error, so
they compose with shell scripts and CI jobs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from .analysis import (
    EXECUTOR_NAMES,
    SOLVER_NAMES,
    BatchedAnalysisEngine,
    HybridExecutor,
    EMChecker,
    ExceedanceCountSink,
    JointExceedanceSink,
    NodeHistogramSink,
    P2QuantileSink,
    QuantileSketchSink,
    RemoteExecutor,
    TopKScenarioSink,
)
from .core import PowerPlanningDL, format_key_values, format_table
from .design import CandidateRanker, ConventionalPowerPlanner, DesignRules, SearchConfig
from .grid import (
    PerturbationKind,
    PerturbationSpec,
    SUITE_NAMES,
    SyntheticIBMSuite,
    mega_sweep_matrices,
    read_netlist,
    write_netlist,
)
from .nn import RegressorConfig, TrainingConfig, load_regressor, save_regressor


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="powerplanningdl",
        description=(
            "Reliability-aware power-grid design with deep learning (DATE 2020 reproduction)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="write a synthetic benchmark netlist")
    generate.add_argument("benchmark", choices=SUITE_NAMES, help="benchmark name")
    generate.add_argument("output", type=Path, help="output SPICE netlist path")
    generate.add_argument(
        "--width", type=float, default=None,
        help="uniform stripe width in um (default: run the conventional sizer)",
    )

    analyze = subparsers.add_parser("analyze", help="static IR-drop analysis of a SPICE netlist")
    analyze.add_argument("netlist", type=Path, help="input SPICE netlist")
    analyze.add_argument("--top", type=int, default=5, help="number of worst nodes to list")

    plan = subparsers.add_parser("plan", help="conventional iterative power planning")
    plan.add_argument("benchmark", choices=SUITE_NAMES, help="benchmark name")
    plan.add_argument("--netlist-out", type=Path, default=None, help="write the sized grid here")
    plan.add_argument(
        "--solver", choices=SOLVER_NAMES, default=None,
        help=(
            "solver backend policy: splu (SuperLU, the default), cholmod "
            "(SPD Cholesky via scikit-sparse; degrades to splu with a "
            "warning when not installed) or auto (cholmod when available). "
            "Unset reads the REPRO_TEST_SOLVER environment"
        ),
    )
    plan.add_argument(
        "--oracle", action="store_true",
        help=(
            "disable low-rank incremental updates and refactorize every "
            "resize iteration fresh (the equivalence-oracle loop)"
        ),
    )
    plan.add_argument(
        "--search", action="store_true",
        help=(
            "batched candidate search: each iteration evaluates a batch of "
            "moves (stripe upsizes, pitch-style reinforcement, decap relief) "
            "against the single cached factorization and commits the best"
        ),
    )
    plan.add_argument(
        "--batch-width", type=int, default=12,
        help="candidates generated per search iteration (implies --search)",
    )
    plan.add_argument(
        "--ranker", action="store_true",
        help=(
            "model-guided pruning: run an exact search first, train the NN "
            "candidate ranker on its observed improvements, then re-plan "
            "with the ranker pruning each batch before any solve"
        ),
    )
    plan.add_argument(
        "--min-width-start", action="store_true",
        help=(
            "start every stripe at the legal minimum width instead of the "
            "analytical sizer's estimate, forcing a full resize trajectory "
            "(the search benchmark's protocol)"
        ),
    )
    plan.add_argument(
        "--json-out", type=Path, default=None,
        help="write the plan record (counters included) as JSON here",
    )

    train = subparsers.add_parser("train", help="train the width model on a benchmark")
    train.add_argument("benchmark", choices=SUITE_NAMES, help="benchmark name")
    train.add_argument("model", type=Path, help="output model file (.npz)")
    train.add_argument("--epochs", type=int, default=80, help="training epochs")
    train.add_argument("--hidden-layers", type=int, default=10, help="hidden layers")
    train.add_argument("--hidden-width", type=int, default=32, help="units per hidden layer")

    predict = subparsers.add_parser("predict", help="predict a design with a trained model")
    predict.add_argument("benchmark", choices=SUITE_NAMES, help="benchmark specification")
    predict.add_argument("model", type=Path, help="trained model file (.npz)")
    predict.add_argument("--gamma", type=float, default=0.0, help="perturbation size (0-0.5)")
    predict.add_argument(
        "--verify", action="store_true",
        help="also run the conventional analysis on the predicted design",
    )

    sweep = subparsers.add_parser(
        "sweep", help="streamed pad-voltage x load mega-sweep with scenario sinks"
    )
    sweep.add_argument("benchmark", choices=SUITE_NAMES, help="benchmark name")
    sweep.add_argument("--width", type=float, default=5.0, help="uniform stripe width in um")
    sweep.add_argument(
        "--num-loads", type=int, default=64, help="workload (load-perturbation) scenario rows"
    )
    sweep.add_argument(
        "--num-pads", type=int, default=16, help="supply (pad-voltage) scenario rows"
    )
    sweep.add_argument("--gamma", type=float, default=0.2, help="perturbation size (0-1)")
    sweep.add_argument(
        "--chunk-size", type=int, default=None,
        help="scenarios solved per RHS chunk (default: adaptive from grid size and workers)",
    )
    sweep.add_argument(
        "--executor", choices=EXECUTOR_NAMES, default=None,
        help=(
            "sweep-execution strategy: serial, threads (chunk solves on a "
            "thread pool, one ordered fold), processes (scenario range "
            "sharded across worker processes, mergeable sinks), hybrid "
            "(process shards each running the threaded pipeline, "
            "zero-copy shared-memory payload, cost-based rebalancing) or "
            "remote (range sharded across fleet workers behind a "
            "coordinator; embedded localhost fleet unless --coordinator "
            "is given). Under processes/hybrid/remote, quantiles switch "
            "from P2 to a deterministic mergeable sketch"
        ),
    )
    sweep.add_argument(
        "--shard-workers", type=int, default=None,
        help=(
            "hybrid executor: process shards to fan the scenario range "
            "across (default: auto from the host CPU count, or the "
            "REPRO_HYBRID_SHARD_WORKERS environment)"
        ),
    )
    sweep.add_argument(
        "--threads-per-shard", type=int, default=None,
        help=(
            "hybrid executor: solver threads inside each process shard "
            "(default: auto, or the REPRO_HYBRID_THREADS environment)"
        ),
    )
    sweep.add_argument(
        "--coordinator", default=None, metavar="URL",
        help=(
            "base URL of a standing sweep coordinator (see `python -m "
            "repro.analysis.remote coordinator`); implies --executor "
            "remote. Without it the remote executor serves an embedded "
            "localhost coordinator and spawns its own workers. Unset "
            "reads the REPRO_REMOTE_COORDINATOR environment"
        ),
    )
    sweep.add_argument(
        "--workers", type=int, default=None,
        help=(
            "parallelism: solver threads (threads executor) or shard "
            "processes (processes executor). Without --executor the "
            "default is 1 (or the REPRO_TEST_WORKERS / REPRO_TEST_EXECUTOR "
            "environment); with an explicit --executor threads/processes "
            "it defaults to the host CPU count. Exact results are "
            "identical for any value"
        ),
    )
    sweep.add_argument(
        "--quantiles", default="0.5,0.9,0.99",
        help="comma-separated quantile levels of the worst-drop distribution",
    )
    sweep.add_argument(
        "--threshold-mv", type=float, default=None,
        help="exceedance threshold in mV (default: the nominal worst IR drop)",
    )
    sweep.add_argument("--top-k", type=int, default=5, help="worst scenarios to shortlist")
    sweep.add_argument("--bins", type=int, default=32, help="per-node histogram bins")
    sweep.add_argument(
        "--solver", choices=SOLVER_NAMES, default=None,
        help=(
            "solver backend policy: splu (SuperLU, the default), cholmod "
            "(SPD Cholesky via scikit-sparse; degrades to splu with a "
            "warning when not installed) or auto (cholmod when available). "
            "Unset reads the REPRO_TEST_SOLVER environment"
        ),
    )
    sweep.add_argument("--seed", type=int, default=2020, help="scenario-generation seed")
    sweep.add_argument(
        "--json-out", type=Path, default=None, help="write the sweep record as JSON here"
    )

    lint = subparsers.add_parser(
        "lint",
        help="run the repo invariant linter (alias for `python -m repro.devtools.lint`)",
    )
    lint.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        metavar="...",
        help="arguments forwarded verbatim (paths, --format, --select, ...)",
    )
    return parser


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_generate(args: argparse.Namespace) -> int:
    bench = SyntheticIBMSuite().load(args.benchmark)
    if args.width is not None:
        network = bench.build_uniform_grid(args.width)
    else:
        plan = ConventionalPowerPlanner(bench.technology).plan(bench.floorplan, bench.topology)
        network = plan.network
    path = write_netlist(network, args.output)
    stats = network.statistics()
    print(
        format_key_values(
            {
                "benchmark": bench.name,
                "netlist": str(path),
                "nodes": stats.num_nodes,
                "resistors": stats.num_resistors,
                "voltage sources": stats.num_sources,
                "current loads": stats.num_loads,
            },
            title="generated netlist",
        )
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if not args.netlist.exists():
        print(f"error: netlist {args.netlist} does not exist", file=sys.stderr)
        return 2
    network = read_netlist(args.netlist)
    result = BatchedAnalysisEngine().analyze(network)
    print(
        format_key_values(
            {
                "netlist": str(args.netlist),
                "nodes": len(network.nodes),
                "worst-case IR drop (mV)": result.worst_ir_drop_mv,
                "average IR drop (mV)": result.average_ir_drop * 1000.0,
                "worst node": result.worst_node,
                "solver": result.solver_method,
                "analysis time (s)": result.analysis_time,
            },
            title="static IR-drop analysis",
        )
    )
    worst = sorted(result.node_ir_drop.items(), key=lambda item: item[1], reverse=True)
    rows = [
        {"node": name, "ir_drop_mV": round(value * 1000.0, 3)}
        for name, value in worst[: max(args.top, 0)]
    ]
    if rows:
        print()
        print(format_table(rows, title=f"{len(rows)} worst nodes"))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    bench = SyntheticIBMSuite().load(args.benchmark)
    use_search = args.search or args.ranker
    initial_widths = None
    if args.min_width_start:
        rules = DesignRules.from_technology(bench.technology)
        initial_widths = np.full(bench.topology.num_lines, rules.min_width)
    search_config: SearchConfig | bool = False
    if use_search:
        search_config = SearchConfig(batch_width=args.batch_width)
        if args.ranker:
            # Exact warmup plan generates the ranker's training data (one
            # row per solved candidate); the pruned re-plan then pays
            # solves only for the model's top picks.
            warm_planner = ConventionalPowerPlanner(
                bench.technology,
                solver=args.solver,
                incremental_updates=not args.oracle,
                search=SearchConfig(batch_width=args.batch_width),
            )
            warm = warm_planner.plan(
                bench.floorplan,
                bench.topology,
                initial_widths=None if initial_widths is None else initial_widths.copy(),
            )
            features, improvements = warm.search.training_data()
            if features.shape[0] == 0:
                print(
                    "warmup plan converged without solving any candidate; "
                    "running the exact search instead"
                )
            else:
                ranker = CandidateRanker()
                ranker.fit(features, improvements)
                search_config = SearchConfig(
                    batch_width=args.batch_width, ranker=ranker
                )
    planner = ConventionalPowerPlanner(
        bench.technology,
        solver=args.solver,
        incremental_updates=not args.oracle,
        search=search_config,
    )
    plan = planner.plan(bench.floorplan, bench.topology, initial_widths=initial_widths)
    cache = planner.analyzer.cache_info()
    values = {
        "benchmark": bench.name,
        "converged": plan.converged,
        "iterations": plan.num_iterations,
        "worst-case IR drop (mV)": plan.ir_result.worst_ir_drop_mv,
        "EM violations": len(plan.em_report.violations),
        "median width (um)": float(np.median(plan.widths)),
        "solver backend": cache.backend,
        "factorizations": cache.factorizations,
        "incremental updates": cache.updates,
        "update fallbacks": cache.update_fallbacks,
        "total time (s)": plan.total_time,
    }
    if plan.search is not None:
        values.update(
            {
                "candidates generated": plan.search.candidates_generated,
                "candidates pruned": plan.search.candidates_pruned,
                "candidates solved": plan.search.candidates_solved,
                "moves committed": plan.search.moves_committed,
                "ranker used": plan.search.ranker_used,
            }
        )
    title = "batched planner search" if plan.search is not None else (
        "conventional power planning"
    )
    print(format_key_values(values, title=title))
    if args.json_out is not None:
        record = {
            "benchmark": bench.name,
            "converged": plan.converged,
            "iterations": plan.num_iterations,
            "worst_ir_drop": plan.ir_result.worst_ir_drop,
            "em_violations": len(plan.em_report.violations),
            "total_time": plan.total_time,
            "analysis_time": plan.analysis_time,
            "backend": cache.backend,
            "factorizations": cache.factorizations,
            "updates": cache.updates,
            "update_fallbacks": cache.update_fallbacks,
        }
        if plan.search is not None:
            record["search"] = plan.search.as_record()
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        with open(args.json_out, "w") as handle:
            json.dump(record, handle, indent=2)
        print(f"plan record written to {args.json_out}")
    if args.netlist_out is not None:
        write_netlist(plan.network, args.netlist_out)
        print(f"sized netlist written to {args.netlist_out}")
    return 0 if plan.converged else 1


def _cmd_train(args: argparse.Namespace) -> int:
    bench = SyntheticIBMSuite().load(args.benchmark)
    config = RegressorConfig(
        hidden_layers=args.hidden_layers,
        hidden_width=args.hidden_width,
        training=TrainingConfig(
            epochs=args.epochs, batch_size=128, early_stopping_patience=0, seed=0
        ),
        seed=0,
    )
    framework = PowerPlanningDL(bench.technology, config)
    trained = framework.train_on_benchmark(bench)
    metrics = framework.evaluate(trained.benchmark_dataset.training)
    path = save_regressor(framework.width_predictor.regressor, args.model)
    print(
        format_key_values(
            {
                "benchmark": bench.name,
                "training samples": trained.benchmark_dataset.training.num_samples,
                "epochs run": trained.training_history.epochs_run,
                "training r2": metrics.r2,
                "training MSE (um^2)": metrics.mse,
                "training time (s)": trained.training_time,
                "model": str(path),
            },
            title="PowerPlanningDL training",
        )
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    if not args.model.exists():
        print(f"error: model {args.model} does not exist", file=sys.stderr)
        return 2
    if not 0 <= args.gamma < 0.5:
        print("error: --gamma must be in [0, 0.5)", file=sys.stderr)
        return 2
    bench = SyntheticIBMSuite().load(args.benchmark)
    framework = PowerPlanningDL(bench.technology)
    framework.width_predictor.regressor = load_regressor(args.model)

    floorplan = bench.floorplan
    if args.gamma > 0:
        from .grid import FloorplanPerturbator

        spec = PerturbationSpec(gamma=args.gamma, kind=PerturbationKind.CURRENT_WORKLOADS, seed=1)
        floorplan = FloorplanPerturbator(spec).perturb(floorplan)

    predicted = framework.predict_design(floorplan, bench.topology)
    summary = {
        "benchmark": bench.name,
        "perturbation gamma": args.gamma,
        "power-grid lines": bench.topology.num_lines,
        "median predicted width (um)": float(np.median(predicted.line_widths)),
        "predicted worst IR drop (mV)": predicted.ir_drop.worst_ir_drop_mv,
        "prediction time (s)": predicted.convergence_time,
    }
    if args.verify:
        from .grid import GridBuilder

        network = GridBuilder(bench.technology).build(
            floorplan, bench.topology, predicted.line_widths
        )
        analysis = BatchedAnalysisEngine().analyze(network)
        em = EMChecker(bench.technology).check(network, analysis)
        summary["verified worst IR drop (mV)"] = analysis.worst_ir_drop_mv
        summary["verified EM violations"] = len(em.violations)
    print(format_key_values(summary, title="PowerPlanningDL prediction"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if not 0 <= args.gamma < 1:
        print("error: --gamma must be in [0, 1)", file=sys.stderr)
        return 2
    if args.num_loads < 1 or args.num_pads < 1:
        print("error: --num-loads and --num-pads must be at least 1", file=sys.stderr)
        return 2
    if args.chunk_size is not None and args.chunk_size < 1:
        print("error: --chunk-size must be at least 1", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    if args.executor == "serial" and args.workers not in (None, 1):
        print("error: --executor serial runs single-threaded; drop --workers", file=sys.stderr)
        return 2
    if args.coordinator is not None and args.executor not in (None, "remote"):
        print("error: --coordinator only applies to --executor remote", file=sys.stderr)
        return 2
    for knob, value in (
        ("--shard-workers", args.shard_workers),
        ("--threads-per-shard", args.threads_per_shard),
    ):
        if value is not None and args.executor != "hybrid":
            print(f"error: {knob} only applies to --executor hybrid", file=sys.stderr)
            return 2
        if value is not None and value < 1:
            print(f"error: {knob} must be at least 1", file=sys.stderr)
            return 2
    if args.executor == "hybrid" and args.workers is not None:
        print(
            "error: the hybrid executor takes --shard-workers and "
            "--threads-per-shard, not --workers",
            file=sys.stderr,
        )
        return 2
    if args.top_k < 1:
        print("error: --top-k must be at least 1", file=sys.stderr)
        return 2
    if args.bins < 1:
        print("error: --bins must be at least 1", file=sys.stderr)
        return 2
    if args.threshold_mv is not None and args.threshold_mv < 0:
        print("error: --threshold-mv must be non-negative", file=sys.stderr)
        return 2
    try:
        quantiles = [float(level) for level in args.quantiles.split(",") if level.strip()]
        P2QuantileSink(quantiles)  # validates levels (range, ascending, non-empty)
    except ValueError as exc:
        print(f"error: invalid --quantiles {args.quantiles!r}: {exc}", file=sys.stderr)
        return 2

    bench = SyntheticIBMSuite().load(args.benchmark)
    grid = bench.build_uniform_grid(args.width)
    engine = BatchedAnalysisEngine(solver=args.solver)
    nominal = engine.analyze(grid)
    threshold = (
        args.threshold_mv / 1000.0 if args.threshold_mv is not None else nominal.worst_ir_drop
    )
    load_matrix, pad_matrix = mega_sweep_matrices(
        grid, bench.floorplan, args.gamma, args.num_loads, args.num_pads, seed=args.seed
    )
    executor = args.executor
    if args.coordinator is not None or args.executor == "remote":
        executor = RemoteExecutor(workers=args.workers, coordinator=args.coordinator)
    elif args.executor == "hybrid":
        # Built here (instead of resolved by name inside the engine) so the
        # per-sweep observability counters in `last_stats` can be read back
        # into the summary and the JSON record below.
        executor = HybridExecutor(
            shard_workers=args.shard_workers, threads_per_shard=args.threads_per_shard
        )
    if args.executor in ("processes", "hybrid", "remote") or args.coordinator is not None:
        # P2 marker state is order-dependent and cannot merge across
        # shards; the log-bucket sketch merges by counter addition and is
        # bitwise identical at every shard count (relative error <= 1%).
        quantile_sink = QuantileSketchSink(quantiles)
    else:
        quantile_sink = P2QuantileSink(quantiles)
    histogram_sink = NodeHistogramSink.uniform(
        0.0, max(2.0 * nominal.worst_ir_drop, 1e-6), args.bins
    )
    exceedance_sink = ExceedanceCountSink(threshold)
    joint_sink = JointExceedanceSink(threshold)
    topk_sink = TopKScenarioSink(args.top_k)
    result = engine.analyze_mega_sweep(
        grid,
        load_matrix,
        pad_matrix,
        chunk_size=args.chunk_size,
        sinks=(quantile_sink, histogram_sink, exceedance_sink, joint_sink, topk_sink),
        workers=args.workers if isinstance(executor, (str, type(None))) else None,
        executor=executor,
    )
    # Sharded executor instances expose the counters of the sweep they
    # just ran (shards, threads_per_shard, payload_bytes_shared,
    # rebalances, workers_reused); name-resolved executors expose none.
    executor_stats = dict(getattr(executor, "last_stats", None) or {})

    estimate = quantile_sink.result()
    exceedance = exceedance_sink.result()
    joint = joint_sink.result()
    topk = topk_sink.result()
    nodes_exceeding = int((exceedance.counts > 0).sum())
    summary = {
        "benchmark": bench.name,
        "scenarios (loads x pads)": f"{args.num_loads} x {args.num_pads} = {result.num_scenarios}",
        "chunk size": result.chunk_size,
        "executor": result.executor,
        "solver workers": result.workers,
        "nominal worst IR drop (mV)": nominal.worst_ir_drop_mv,
        "sweep worst IR drop (mV)": float(result.worst_ir_drop.max()) * 1000.0,
    }
    for key, value in executor_stats.items():
        summary[key.replace("_", " ")] = value
    for level, value in zip(estimate.quantiles, estimate.values):
        summary[f"P{level * 100:g} worst drop (mV)"] = float(value) * 1000.0
    summary.update(
        {
            "exceedance threshold (mV)": threshold * 1000.0,
            "nodes ever exceeding": nodes_exceeding,
            "max node exceedance rate": float(exceedance.rates.max()),
            "scenarios with any violation": joint.scenarios_with_violation,
            "P(any node exceeds)": joint.any_exceedance_rate,
            "scenarios / second": result.scenarios_per_second,
            "sweep time (s)": result.analysis_time,
            "solver backend": engine.cache_info().backend,
            "factorizations": engine.cache_info().factorizations,
        }
    )
    print(format_key_values(summary, title="streamed mega-sweep"))

    rows = [
        {
            "rank": rank + 1,
            "scenario": int(topk.scenario_index[rank]),
            "load_row": result.scenario_pair(int(topk.scenario_index[rank]))[0],
            "pad_row": result.scenario_pair(int(topk.scenario_index[rank]))[1],
            "worst_drop_mV": round(float(topk.worst_ir_drop[rank]) * 1000.0, 3),
            "worst_node": result.compiled.node_names[int(topk.worst_node_index[rank])],
        }
        for rank in range(topk.k)
    ]
    if rows:
        print()
        print(format_table(rows, title=f"top-{topk.k} worst scenarios"))

    if args.json_out is not None:
        histogram = histogram_sink.result()
        record = {
            "benchmark": bench.name,
            "gamma": args.gamma,
            "seed": args.seed,
            "num_load_scenarios": args.num_loads,
            "num_pad_scenarios": args.num_pads,
            "num_scenarios": result.num_scenarios,
            "chunk_size": result.chunk_size,
            "executor": result.executor,
            "workers": result.workers,
            "executor_stats": executor_stats,
            "nominal_worst_ir_drop": nominal.worst_ir_drop,
            "sweep_worst_ir_drop": float(result.worst_ir_drop.max()),
            "quantiles": dict(zip(map(str, estimate.quantiles), estimate.values.tolist())),
            "exceedance_threshold": threshold,
            "nodes_ever_exceeding": nodes_exceeding,
            "max_node_exceedance_rate": float(exceedance.rates.max()),
            "scenarios_with_violation": joint.scenarios_with_violation,
            "any_exceedance_rate": joint.any_exceedance_rate,
            "max_violating_nodes": joint.max_violating_nodes,
            "histogram_edges": histogram.edges.tolist(),
            "top_scenarios": [
                {
                    "scenario": int(topk.scenario_index[rank]),
                    "worst_ir_drop": float(topk.worst_ir_drop[rank]),
                    "worst_node": result.compiled.node_names[int(topk.worst_node_index[rank])],
                }
                for rank in range(topk.k)
            ],
            "analysis_time_seconds": result.analysis_time,
            "scenarios_per_second": result.scenarios_per_second,
            "solver_backend": engine.cache_info().backend,
            "factorizations": engine.cache_info().factorizations,
            "incremental_updates": engine.cache_info().updates,
            "update_fallbacks": engine.cache_info().update_fallbacks,
        }
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        with open(args.json_out, "w") as handle:
            json.dump(record, handle, indent=2)
        print(f"sweep record written to {args.json_out}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the linter is a dev tool, and the hot CLI paths
    # (analyze/sweep) should not pay for it.
    from .devtools.lint.cli import main as lint_main

    return lint_main(args.lint_args)


_COMMANDS = {
    "generate": _cmd_generate,
    "analyze": _cmd_analyze,
    "plan": _cmd_plan,
    "train": _cmd_train,
    "predict": _cmd_predict,
    "sweep": _cmd_sweep,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw and raw[0] == "lint":
        # Forward everything after `lint` verbatim: argparse's REMAINDER
        # does not reliably capture leading `--flags` (bpo-17050), and the
        # lint CLI owns its own option surface anyway.
        from .devtools.lint.cli import main as lint_main

        return lint_main(raw[1:])
    parser = build_parser()
    args = parser.parse_args(raw)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
