"""Incremental power-grid redesign under specification changes (Fig. 9 study).

The paper's main recommendation is that PowerPlanningDL shines for
*incremental* design: when the specification changes a little (an ECO, a
re-budgeted block, a small floorplan tweak), the trained model predicts the
new grid instantly instead of re-running the analyse-and-resize loop — but
its error grows with the size of the change.

This script reproduces that study on ibmpg6: it sweeps the perturbation size
gamma from 10 % to 30 % for the three perturbation families of the paper,
reports the prediction MSE for each, and shows the break-even point where
retraining would be advisable.

Run with:  python examples/incremental_redesign.py
"""

from __future__ import annotations

from repro import PowerPlanningDL, load_benchmark
from repro.core import format_table
from repro.grid import PerturbationKind, PerturbationSpec
from repro.io import ascii_series
from repro.nn import RegressorConfig

import numpy as np


def main() -> None:
    bench = load_benchmark("ibmpg6")
    framework = PowerPlanningDL(bench.technology, RegressorConfig.paper_default(epochs=60))
    framework.train_on_benchmark(bench)
    baseline = framework.evaluate(framework.trained.benchmark_dataset.training)
    print(f"trained on {bench.name}: training r2 = {baseline.r2:.3f}")

    gammas = (0.10, 0.15, 0.20, 0.25, 0.30)
    rows = []
    for gamma in gammas:
        row = {"gamma": f"{int(gamma * 100)}%"}
        for kind in PerturbationKind:
            spec = PerturbationSpec(gamma=gamma, kind=kind, seed=int(gamma * 1000))
            _, test_dataset, _ = framework.predict_for_perturbation(bench, spec)
            metrics = framework.evaluate(test_dataset)
            row[kind.value] = round(metrics.mse_percent, 2)
        rows.append(row)

    print()
    print(
        format_table(
            rows,
            columns=["gamma", "node_voltages", "current_workloads", "both"],
            title="prediction MSE(%) vs. perturbation size (ibmpg6, Fig. 9b study)",
        )
    )
    print()
    print(
        ascii_series(
            np.asarray([float(row["gamma"].rstrip("%")) for row in rows]),
            np.asarray([row["both"] for row in rows]),
            width=40,
            height=10,
            title="MSE(%) vs gamma ('both' perturbation)",
        )
    )

    worst = rows[-1]["both"]
    print()
    if worst > 3 * rows[0]["both"]:
        print(
            "conclusion: beyond ~20-30 % specification change the prediction error grows "
            "quickly — matching the paper's advice to use PowerPlanningDL for incremental "
            "changes and to retrain (or fall back to the conventional flow) for large ones."
        )
    else:
        print("conclusion: prediction error stays flat over this perturbation range.")


if __name__ == "__main__":
    main()
