"""Design the power grid of a new SoC floorplan with a trained model.

The scenario the paper's introduction motivates: a design team has historical
power-grid designs (here: the synthetic ibmpg2 benchmark, planned with the
conventional flow) and wants a *first-cut* power grid for a brand-new SoC
floorplan without running the iterative analyse-and-resize loop.

The script:

1. trains PowerPlanningDL on ibmpg2;
2. builds a new SoC floorplan by hand (CPU cluster, GPU, memory controller,
   NoC, peripherals) with switching currents from a switching-activity file
   (the VCD surrogate);
3. predicts per-line widths and the IR drop for the new SoC;
4. verifies the predicted design with the full conventional analysis and the
   EM checker, exactly as a sign-off engineer would.

Run with:  python examples/design_new_soc_grid.py
"""

from __future__ import annotations

from pathlib import Path
import tempfile

from repro import PowerPlanningDL, load_benchmark
from repro.analysis import EMChecker, IRDropAnalyzer
from repro.core import format_key_values, format_table
from repro.design import DesignRules
from repro.grid import Floorplan, FunctionalBlock, GridBuilder, PowerPad, uniform_topology
from repro.io import activities_from_floorplan, read_activity, write_activity
from repro.nn import RegressorConfig


def build_new_soc(vdd: float) -> Floorplan:
    """A hand-crafted 3 x 3 mm SoC floorplan with realistic block currents."""
    core = 3000.0
    blocks = [
        FunctionalBlock("cpu_cluster", 150.0, 1650.0, 1200.0, 1200.0, switching_current=0.55),
        FunctionalBlock("gpu", 1650.0, 1650.0, 1200.0, 1200.0, switching_current=0.70),
        FunctionalBlock("memory_controller", 150.0, 150.0, 1200.0, 600.0, switching_current=0.25),
        FunctionalBlock("noc_fabric", 150.0, 850.0, 1200.0, 700.0, switching_current=0.18),
        FunctionalBlock("peripherals", 1650.0, 150.0, 1200.0, 1400.0, switching_current=0.12),
    ]
    pads = [
        PowerPad(f"pad_{i}_{j}", x=(i + 1) * core / 8.0, y=(j + 1) * core / 8.0, voltage=vdd)
        for i in range(7)
        for j in range(7)
    ]
    return Floorplan("new_soc", core, core, blocks=blocks, pads=pads)


def main() -> None:
    # 1. Train on historical data (ibmpg2).
    history = load_benchmark("ibmpg2")
    framework = PowerPlanningDL(history.technology, RegressorConfig.paper_default(epochs=80))
    framework.train_on_benchmark(history)
    print(f"trained on historical benchmark {history.name}")

    # 2. Build the new SoC and round-trip its switching activity through the
    # VCD-surrogate file format, the way front-end data would arrive.
    soc = build_new_soc(history.technology.vdd)
    with tempfile.TemporaryDirectory() as tmp:
        activity_file = Path(tmp) / "new_soc_activity.txt"
        write_activity(activities_from_floorplan(soc, history.technology.vdd), activity_file)
        activities = read_activity(activity_file)
    print(f"switching activity read for {len(activities)} blocks")

    topology = uniform_topology(soc, num_vertical=40, num_horizontal=40)

    # 3. Predict the power-grid design.
    predicted = framework.predict_design(soc, topology)
    print()
    print(
        format_key_values(
            {
                "power-grid lines": topology.num_lines,
                "median predicted width (um)": float(
                    sorted(predicted.line_widths)[len(predicted.line_widths) // 2]
                ),
                "max predicted width (um)": float(predicted.line_widths.max()),
                "predicted worst IR drop (mV)": predicted.ir_drop.worst_ir_drop_mv,
                "prediction time (s)": predicted.convergence_time,
            },
            title="PowerPlanningDL prediction for the new SoC",
        )
    )

    # 4. Sign-off style verification with the conventional engines.
    rules = DesignRules.from_technology(history.technology)
    widths = rules.legalize_widths(predicted.line_widths)
    network = GridBuilder(history.technology).build(soc, topology, widths)
    analysis = IRDropAnalyzer().analyze(network)
    em_report = EMChecker(history.technology).check(network, analysis)
    print(
        format_table(
            [
                {
                    "check": "worst-case IR drop",
                    "value": f"{analysis.worst_ir_drop_mv:.1f} mV",
                    "limit": f"{history.technology.ir_drop_limit * 1000:.0f} mV",
                    "status": (
                        "PASS"
                        if analysis.worst_ir_drop <= history.technology.ir_drop_limit
                        else "REVIEW"
                    ),
                },
                {
                    "check": "EM current density",
                    "value": f"{em_report.worst_density * 1000:.2f} mA/um",
                    "limit": f"{history.technology.jmax * 1000:.0f} mA/um",
                    "status": (
                        "PASS" if em_report.passed else f"{len(em_report.violations)} violations"
                    ),
                },
            ],
            title="sign-off verification of the predicted design",
        )
    )


if __name__ == "__main__":
    main()
