"""Quickstart: train PowerPlanningDL on one benchmark and predict a design.

This script walks through the whole flow of the paper's Fig. 2 on the
smallest synthetic benchmark (ibmpg1):

1. generate the benchmark (floorplan + power-grid topology);
2. run the conventional iterative planner to obtain the golden design
   ("historical data");
3. train the neural width model on the extracted (X, Y, Id, w) quadruples;
4. predict the design for a 10 %-perturbed specification and estimate its
   IR drop without any power-grid analysis;
5. report accuracy (r², MSE) and the speedup over the conventional step.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import PowerPlanningDL, load_benchmark
from repro.core import compare_convergence, compare_worst_ir_drop, format_key_values
from repro.nn import RegressorConfig


def main() -> None:
    # 1. Generate the synthetic ibmpg1 benchmark.
    bench = load_benchmark("ibmpg1")
    print(f"benchmark: {bench.name}")
    print(f"  core: {bench.floorplan.core_width:.0f} x {bench.floorplan.core_height:.0f} um")
    print(f"  blocks: {len(bench.floorplan.blocks)}, pads: {len(bench.floorplan.pads)}")
    print(f"  power-grid lines: {bench.topology.num_lines}")

    # 2-3. Train the framework: this runs the conventional planner once to
    # produce golden widths, then fits the 10-hidden-layer width model.
    framework = PowerPlanningDL(bench.technology, RegressorConfig.paper_default(epochs=80))
    trained = framework.train_on_benchmark(bench)
    golden = trained.benchmark_dataset.golden_plan
    print()
    print(
        format_key_values(
            {
                "golden worst-case IR drop (mV)": golden.ir_result.worst_ir_drop_mv,
                "golden design converged": golden.converged,
                "training samples (crossings)": trained.benchmark_dataset.training.num_samples,
                "training time (s)": trained.training_time,
                "epochs run": trained.training_history.epochs_run,
            },
            title="training (conventional golden design + width model)",
        )
    )

    # 4. Predict the design for a perturbed specification (incremental redesign).
    spec = framework.default_perturbation(gamma=0.10)
    predicted, test_dataset, perturbed_golden = framework.predict_for_perturbation(bench, spec)

    # 5. Evaluate.
    metrics = framework.evaluate(test_dataset)
    ir_row = compare_worst_ir_drop(perturbed_golden, predicted)
    time_row = compare_convergence(perturbed_golden, predicted)
    print()
    print(
        format_key_values(
            {
                "test r2 score": metrics.r2,
                "test MSE (um^2)": metrics.mse,
                "conventional worst IR drop (mV)": ir_row.conventional_mv,
                "predicted worst IR drop (mV)": ir_row.predicted_mv,
                "conventional step time (s)": time_row.conventional_seconds,
                "PowerPlanningDL time (s)": time_row.powerplanningdl_seconds,
                "speedup": f"{time_row.speedup:.2f}x",
            },
            title="prediction on the gamma=10% perturbed specification",
        )
    )


if __name__ == "__main__":
    main()
