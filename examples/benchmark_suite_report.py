"""Full benchmark-suite report: regenerate the paper's headline tables.

Runs the whole synthetic IBM suite through both flows and prints the three
headline tables of the paper in one go:

* Table III — worst-case IR drop, conventional vs. PowerPlanningDL;
* Table IV — convergence time and speedup (the ~6x headline result);
* Table V  — r² score, MSE and peak memory.

This is the script to run for a quick end-to-end health check of the whole
reproduction (the pytest benches under ``benchmarks/`` add the figures and
write CSV artefacts).

Run with:  python examples/benchmark_suite_report.py [benchmark ...]
"""

from __future__ import annotations

import sys

from repro import PowerPlanningDL, SyntheticIBMSuite
from repro.core import (
    PeakMemoryProfiler,
    compare_convergence,
    compare_worst_ir_drop,
    format_speedup,
    format_table,
)
from repro.nn import RegressorConfig, TrainingConfig


def run_suite(names: list[str]) -> None:
    suite = SyntheticIBMSuite()
    config = RegressorConfig(
        hidden_layers=10,
        hidden_width=32,
        training=TrainingConfig(epochs=60, batch_size=128, early_stopping_patience=0, seed=0),
        seed=0,
    )

    table3, table4, table5 = [], [], []
    for name in names:
        bench = suite.load(name)
        framework = PowerPlanningDL(bench.technology, config)
        trained = framework.train_on_benchmark(bench)
        golden = trained.benchmark_dataset.golden_plan

        predicted = framework.predict_design(bench.floorplan, bench.topology)
        spec = framework.default_perturbation(gamma=0.10)
        _, test_dataset, _ = framework.predict_for_perturbation(bench, spec)
        metrics = framework.evaluate(test_dataset)
        profile = PeakMemoryProfiler(sample_interval=0.01).profile(
            lambda: framework.predict_design(bench.floorplan, bench.topology), label=name
        )

        ir_row = compare_worst_ir_drop(golden, predicted)
        time_row = compare_convergence(golden, predicted)
        table3.append(
            {
                "benchmark": name,
                "conventional_mV": round(ir_row.conventional_mv, 1),
                "powerplanningdl_mV": round(ir_row.predicted_mv, 1),
            }
        )
        table4.append(
            {
                "benchmark": name,
                "conventional_s": round(time_row.conventional_seconds, 4),
                "powerplanningdl_s": round(time_row.powerplanningdl_seconds, 4),
                "speedup": format_speedup(time_row.speedup),
            }
        )
        table5.append(
            {
                "benchmark": name,
                "interconnects": metrics.num_interconnects,
                "r2_score": round(metrics.r2, 3),
                "mse": round(metrics.mse, 4),
                "peak_memory_MiB": round(profile.peak_mib, 1),
            }
        )
        print(f"finished {name}")

    print()
    print(format_table(table3, title="Table III: worst-case IR drop (mV)"))
    print()
    print(format_table(table4, title="Table IV: convergence time and speedup"))
    print()
    print(format_table(table5, title="Table V: accuracy and peak memory"))


def main() -> None:
    names = sys.argv[1:] or list(SyntheticIBMSuite().names())
    unknown = [name for name in names if name not in SyntheticIBMSuite().names()]
    if unknown:
        raise SystemExit(f"unknown benchmarks: {unknown}")
    run_suite(names)


if __name__ == "__main__":
    main()
