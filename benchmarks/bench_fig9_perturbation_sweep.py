"""Fig. 9: prediction MSE versus perturbation size gamma.

The paper sweeps the test-set perturbation size from 10 % to 30 % for three
perturbation families (node voltages, current workloads, both) on ibmpg2 and
ibmpg6, and observes that the MSE grows with gamma — the basis of its
recommendation that PowerPlanningDL suits *incremental* power-grid design.

This bench regenerates both subfigures as MSE(%) series, prints them, writes
them as CSV and times a single perturbed-test evaluation.

Golden-label generation runs through the batched engine path: the 15 specs
of the sweep share 6 deduplicated conventional golden plans
(:meth:`~repro.core.dataset.DatasetBuilder.build_perturbed_sweep`, each plan
solved by the planner's rebuild-free compiled loop), and the golden design's
IR-drop degradation under the same workload perturbations is regenerated as
one sharded multi-RHS :meth:`analyze_batch` sweep over
:func:`~repro.grid.perturbation.floorplan_perturbed_load_matrix` scenarios —
one factorization for the whole series.  The reported MSE(%) numbers are
identical to the per-spec path.
"""

from __future__ import annotations

import numpy as np
from conftest import full_scale

from repro.analysis import BatchedAnalysisEngine
from repro.core import format_table
from repro.grid import (
    PerturbationKind,
    PerturbationSpec,
    floorplan_perturbed_load_matrix,
)
from repro.io import ascii_series, write_csv

_GAMMAS = (0.10, 0.15, 0.20, 0.25, 0.30)


def _sweep_specs():
    """The Fig. 9 grid of specs: every gamma x every perturbation family."""
    return [
        PerturbationSpec(gamma=gamma, kind=kind, seed=int(gamma * 1000))
        for gamma in _GAMMAS
        for kind in PerturbationKind
    ]


def _sweep(prepared):
    framework = prepared.framework
    specs = _sweep_specs()
    datasets = framework.dataset_builder.build_perturbed_sweep(prepared.benchmark, specs)
    metrics = {
        (spec.gamma, spec.kind): framework.evaluate(dataset)
        for spec, (dataset, _, _) in zip(specs, datasets)
    }
    rows = []
    for gamma in _GAMMAS:
        row = {"gamma_percent": int(round(gamma * 100))}
        for kind in PerturbationKind:
            row[kind.value] = round(metrics[(gamma, kind)].mse_percent, 2)
        rows.append(row)
    return rows


def _golden_engine_series(prepared):
    """Golden-design IR-drop degradation, one sharded multi-RHS solve.

    Scenario per gamma: the golden (historical) design analysed under the
    sweep's CURRENT_WORKLOADS block perturbation, all rows solved against a
    single cached factorization with streamed reductions.
    """
    compiled = prepared.golden_plan.network.compile()
    load_matrix = np.vstack(
        [
            floorplan_perturbed_load_matrix(
                compiled,
                prepared.benchmark.floorplan,
                PerturbationSpec(
                    gamma=gamma,
                    kind=PerturbationKind.CURRENT_WORKLOADS,
                    seed=int(gamma * 1000),
                ),
                1,
            )[0]
            for gamma in _GAMMAS
        ]
    )
    engine = BatchedAnalysisEngine()
    batch = engine.analyze_batch(compiled, load_matrix, chunk_size=2)
    assert batch.voltages is None  # sharded: reductions only, no dense matrix
    assert engine.cache_info().factorizations == 1
    return [
        {
            "gamma_percent": int(round(gamma * 100)),
            "worst_ir_drop_mv": round(float(batch.worst_ir_drop[i]) * 1000.0, 4),
            "average_ir_drop_mv": round(float(batch.average_ir_drop[i]) * 1000.0, 4),
        }
        for i, gamma in enumerate(_GAMMAS)
    ]


def _check_shape(rows):
    """MSE grows with gamma for every perturbation family (paper's finding)."""
    if not full_scale():
        return  # tiny smoke grids do not reproduce the paper's curve shapes
    for kind in PerturbationKind:
        series = [row[kind.value] for row in rows]
        assert series[-1] > series[0], f"MSE should grow with gamma for {kind.value}"


def _run(prepared, results_dir, figure, benchmark_name):
    rows = _sweep(prepared)
    print()
    print(
        format_table(
            rows, title=f"Fig. 9({figure}): MSE(%) vs perturbation size ({benchmark_name})"
        )
    )
    golden_rows = _golden_engine_series(prepared)
    print(
        format_table(
            golden_rows,
            title=f"Golden design under workload perturbation, engine multi-RHS ({benchmark_name})",
        )
    )
    write_csv(rows, results_dir / f"fig9{figure}_perturbation_{benchmark_name}.csv")
    write_csv(golden_rows, results_dir / f"fig9{figure}_golden_engine_{benchmark_name}.csv")
    _check_shape(rows)
    return rows


def test_fig9a_perturbation_sweep_ibmpg2(benchmark, prepared_ibmpg2, results_dir):
    """Regenerate Fig. 9(a) for ibmpg2; time one perturbed evaluation."""
    framework = prepared_ibmpg2.framework
    spec = PerturbationSpec(gamma=0.10, kind=PerturbationKind.BOTH, seed=100)

    def one_evaluation():
        _, test_dataset, _ = framework.predict_for_perturbation(prepared_ibmpg2.benchmark, spec)
        return framework.evaluate(test_dataset)

    benchmark.pedantic(one_evaluation, rounds=1, iterations=1)

    rows = _run(prepared_ibmpg2, results_dir, "a", "ibmpg2")
    print(
        ascii_series(
            np.asarray([row["gamma_percent"] for row in rows], dtype=float),
            np.asarray([row["both"] for row in rows]),
            width=40,
            height=10,
            title="MSE(%) vs gamma, perturbation in both (ibmpg2)",
        )
    )


def test_fig9b_perturbation_sweep_ibmpg6(benchmark, prepared_ibmpg6, results_dir):
    """Regenerate Fig. 9(b) for ibmpg6; time one perturbed evaluation."""
    framework = prepared_ibmpg6.framework
    spec = PerturbationSpec(gamma=0.10, kind=PerturbationKind.BOTH, seed=100)

    def one_evaluation():
        _, test_dataset, _ = framework.predict_for_perturbation(prepared_ibmpg6.benchmark, spec)
        return framework.evaluate(test_dataset)

    benchmark.pedantic(one_evaluation, rounds=1, iterations=1)

    _run(prepared_ibmpg6, results_dir, "b", "ibmpg6")
