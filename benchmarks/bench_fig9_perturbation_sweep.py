"""Fig. 9: prediction MSE versus perturbation size gamma.

The paper sweeps the test-set perturbation size from 10 % to 30 % for three
perturbation families (node voltages, current workloads, both) on ibmpg2 and
ibmpg6, and observes that the MSE grows with gamma — the basis of its
recommendation that PowerPlanningDL suits *incremental* power-grid design.

This bench regenerates both subfigures as MSE(%) series, prints them, writes
them as CSV and times a single perturbed-test evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.core import format_table
from repro.grid import PerturbationKind, PerturbationSpec
from repro.io import ascii_series, write_csv

_GAMMAS = (0.10, 0.15, 0.20, 0.25, 0.30)


def _sweep(prepared):
    framework = prepared.framework
    rows = []
    for gamma in _GAMMAS:
        row = {"gamma_percent": int(round(gamma * 100))}
        for kind in PerturbationKind:
            spec = PerturbationSpec(gamma=gamma, kind=kind, seed=int(gamma * 1000))
            _, test_dataset, _ = framework.predict_for_perturbation(prepared.benchmark, spec)
            metrics = framework.evaluate(test_dataset)
            row[kind.value] = round(metrics.mse_percent, 2)
        rows.append(row)
    return rows


def _check_shape(rows):
    """MSE grows with gamma for every perturbation family (paper's finding)."""
    for kind in PerturbationKind:
        series = [row[kind.value] for row in rows]
        assert series[-1] > series[0], f"MSE should grow with gamma for {kind.value}"


def test_fig9a_perturbation_sweep_ibmpg2(benchmark, prepared_ibmpg2, results_dir):
    """Regenerate Fig. 9(a) for ibmpg2; time one perturbed evaluation."""
    framework = prepared_ibmpg2.framework
    spec = PerturbationSpec(gamma=0.10, kind=PerturbationKind.BOTH, seed=100)

    def one_evaluation():
        _, test_dataset, _ = framework.predict_for_perturbation(prepared_ibmpg2.benchmark, spec)
        return framework.evaluate(test_dataset)

    benchmark.pedantic(one_evaluation, rounds=1, iterations=1)

    rows = _sweep(prepared_ibmpg2)
    print()
    print(format_table(rows, title="Fig. 9(a): MSE(%) vs perturbation size (ibmpg2)"))
    print(
        ascii_series(
            np.asarray([row["gamma_percent"] for row in rows], dtype=float),
            np.asarray([row["both"] for row in rows]),
            width=40,
            height=10,
            title="MSE(%) vs gamma, perturbation in both (ibmpg2)",
        )
    )
    write_csv(rows, results_dir / "fig9a_perturbation_ibmpg2.csv")
    _check_shape(rows)


def test_fig9b_perturbation_sweep_ibmpg6(benchmark, prepared_ibmpg6, results_dir):
    """Regenerate Fig. 9(b) for ibmpg6; time one perturbed evaluation."""
    framework = prepared_ibmpg6.framework
    spec = PerturbationSpec(gamma=0.10, kind=PerturbationKind.BOTH, seed=100)

    def one_evaluation():
        _, test_dataset, _ = framework.predict_for_perturbation(prepared_ibmpg6.benchmark, spec)
        return framework.evaluate(test_dataset)

    benchmark.pedantic(one_evaluation, rounds=1, iterations=1)

    rows = _sweep(prepared_ibmpg6)
    print()
    print(format_table(rows, title="Fig. 9(b): MSE(%) vs perturbation size (ibmpg6)"))
    write_csv(rows, results_dir / "fig9b_perturbation_ibmpg6.csv")
    _check_shape(rows)
