"""Table II: benchmark-suite statistics (#n, #r, #v, #i).

Table II of the paper lists the sizes of the IBM power-grid benchmarks.  The
synthetic suite is deliberately scaled down (see DESIGN.md), so the absolute
counts differ by roughly two orders of magnitude, but the *relative*
ordering — ibmpg1 smallest, the pg6/new1 class largest — must be preserved
because the speedup trend of Table IV depends on it.

This bench prints the synthetic Table II, writes it as CSV and times grid
construction for the largest benchmark.
"""

from __future__ import annotations

from conftest import suite_names

from repro.core import format_table
from repro.grid import GridBuilder
from repro.io import write_csv

_PAPER_NODE_COUNTS = {
    "ibmpg1": 30638,
    "ibmpg2": 127238,
    "ibmpg3": 851584,
    "ibmpg4": 953583,
    "ibmpg5": 1079310,
    "ibmpg6": 1670494,
    "ibmpgnew1": 1461036,
    "ibmpgnew2": 1461039,
}


def test_table2_suite_statistics(benchmark, benchmark_cache, results_dir):
    """Regenerate (the synthetic analogue of) Table II; time one grid build."""
    rows = []
    for name in suite_names():
        prepared = benchmark_cache.get(name)
        stats = prepared.golden_plan.network.statistics()
        rows.append(
            {
                "benchmark": name,
                "nodes": stats.num_nodes,
                "resistors": stats.num_resistors,
                "sources": stats.num_sources,
                "loads": stats.num_loads,
                "paper_nodes": _PAPER_NODE_COUNTS[name],
            }
        )

    prepared_largest = benchmark_cache.get("ibmpgnew1")
    builder = GridBuilder(prepared_largest.benchmark.technology)
    benchmark.pedantic(
        builder.build,
        args=(
            prepared_largest.benchmark.floorplan,
            prepared_largest.benchmark.topology,
            prepared_largest.golden_plan.widths,
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(format_table(rows, title="Table II (synthetic analogue): power-grid statistics"))
    write_csv(rows, results_dir / "table2_suite_statistics.csv")

    # Relative-size claim: the synthetic node counts preserve the ordering of
    # the paper's smallest and largest benchmarks.
    synthetic = {row["benchmark"]: row["nodes"] for row in rows}
    if len(synthetic) == len(_PAPER_NODE_COUNTS):
        assert min(synthetic, key=synthetic.get) == "ibmpg1"
        assert synthetic["ibmpg6"] > synthetic["ibmpg2"] > synthetic["ibmpg1"]
