"""Micro-benchmark: naive per-solve analysis vs the batched engine.

The conventional path re-assembles and re-factorizes the nodal system for
every load scenario; the :class:`~repro.analysis.engine.BatchedAnalysisEngine`
compiles the grid once, factorizes once and serves every scenario with a
multi-RHS triangular solve.  This bench sweeps ≥50 current-only load
scenarios on the largest shipped synthetic benchmark grid, verifies the two
paths agree to machine precision, asserts the ≥3x speedup acceptance bar
and emits a JSON speedup record.
"""

from __future__ import annotations

import json

from repro.core import batched_solve_study, format_key_values
from repro.grid import PerturbationKind, PerturbationSpec, SyntheticIBMSuite

NUM_SCENARIOS = 50
MIN_SPEEDUP = 3.0
VOLTAGE_TOLERANCE = 1e-9


def largest_benchmark_name(suite: SyntheticIBMSuite) -> str:
    """Name of the shipped benchmark with the most grid nodes."""
    return max(suite.names(), key=lambda name: suite.config(name).approx_nodes)


def test_batched_solve_speedup(benchmark, results_dir):
    """Cached-factorization multi-RHS vs per-solve baseline, ≥50 scenarios."""
    suite = SyntheticIBMSuite()
    name = largest_benchmark_name(suite)
    grid = suite.load(name).build_uniform_grid(5.0)
    spec = PerturbationSpec(gamma=0.2, kind=PerturbationKind.CURRENT_WORKLOADS, seed=2020)

    study = benchmark.pedantic(
        lambda: batched_solve_study(grid, spec, num_scenarios=NUM_SCENARIOS),
        rounds=1,
        iterations=1,
    )

    record = study.as_record()
    record["grid_statistics"] = dict(
        zip(("num_nodes", "num_resistors", "num_sources", "num_loads"),
            grid.statistics().as_row())
    )
    print()
    print(
        format_key_values(
            {
                "benchmark": study.benchmark,
                "scenarios": study.num_scenarios,
                "naive (s)": round(study.naive_seconds, 4),
                "batched (s)": round(study.batched_seconds, 4),
                "speedup": round(study.speedup, 2),
                "factorizations (batched)": study.batched_factorizations,
                "max |dV| (V)": study.max_voltage_difference,
            },
            title=f"naive re-solve vs cached-factorization multi-RHS ({name})",
        )
    )
    with open(results_dir / "bench_engine_batched_solve.json", "w") as handle:
        json.dump(record, handle, indent=2)

    assert study.batched_factorizations == 1
    assert study.max_voltage_difference <= VOLTAGE_TOLERANCE
    assert study.speedup >= MIN_SPEEDUP, (
        f"batched engine speedup {study.speedup:.2f}x below the {MIN_SPEEDUP}x bar"
    )
