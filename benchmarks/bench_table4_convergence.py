"""Table IV (main result): convergence time and speedup.

Table IV compares the convergence time of the conventional power-planning
approach (dominated by the power-grid analysis of one best-case design
iteration) against PowerPlanningDL's prediction time (width prediction plus
Kirchhoff IR-drop prediction), and reports speedups from 1.92x (ibmpg1) up
to 5.87x (ibmpg5), growing with benchmark size.

This bench regenerates the table over the synthetic suite, times both paths
on ibmpg6 with pytest-benchmark, and asserts the paper's shape claims: the
DL flow wins everywhere and the largest grids see the largest speedups.
"""

from __future__ import annotations


from conftest import suite_names

from repro.core import compare_convergence, format_speedup, format_table
from repro.io import write_csv, write_json

_PAPER_SPEEDUPS = {
    "ibmpg1": 1.92,
    "ibmpg2": 1.97,
    "ibmpg3": 3.59,
    "ibmpg4": 4.42,
    "ibmpg5": 5.87,
    "ibmpg6": 5.60,
    "ibmpgnew1": 4.77,
    "ibmpgnew2": 4.47,
}


def _collect_rows(benchmark_cache):
    rows = []
    for name in suite_names():
        prepared = benchmark_cache.get(name)
        comparison = compare_convergence(prepared.golden_plan, prepared.nominal_prediction)
        rows.append(
            {
                "benchmark": name,
                "nodes": prepared.golden_plan.network.statistics().num_nodes,
                "conventional_s": round(comparison.conventional_seconds, 4),
                "powerplanningdl_s": round(comparison.powerplanningdl_seconds, 4),
                "speedup": round(comparison.speedup, 2),
                "paper_speedup": _PAPER_SPEEDUPS[name],
            }
        )
    return rows


def test_table4_convergence_time_and_speedup(benchmark, benchmark_cache, results_dir):
    """Regenerate Table IV; time the DL prediction path on ibmpg6."""
    rows = _collect_rows(benchmark_cache)

    prepared6 = benchmark_cache.get("ibmpg6")
    benchmark(
        prepared6.framework.predict_design,
        prepared6.benchmark.floorplan,
        prepared6.benchmark.topology,
    )

    print()
    print(
        format_table(
            rows,
            title="Table IV: convergence time, conventional vs. PowerPlanningDL",
        )
    )
    best = max(rows, key=lambda row: row["speedup"])
    print(f"best speedup: {best['benchmark']} at {format_speedup(best['speedup'])} "
          f"(paper best: ibmpg5 at 5.87x)")
    write_csv(rows, results_dir / "table4_convergence.csv")
    write_json(
        {row["benchmark"]: row["speedup"] for row in rows}, results_dir / "table4_speedups.json"
    )

    # Paper shape claims.
    assert all(row["speedup"] > 1.0 for row in rows), "DL flow must win on every benchmark"
    small = [row["speedup"] for row in rows if row["benchmark"] == "ibmpg1"]
    large = [row["speedup"] for row in rows if row["benchmark"] in ("ibmpg6", "ibmpgnew1")]
    if small and large:
        assert max(large) > small[0], "speedup should grow with benchmark size"


def test_table4_conventional_analysis_baseline(benchmark, benchmark_cache):
    """Time the conventional build + analyse step the speedup is measured against."""
    from repro.analysis import IRDropAnalyzer
    from repro.grid import GridBuilder

    prepared = benchmark_cache.get("ibmpg6")
    builder = GridBuilder(prepared.benchmark.technology)
    analyzer = IRDropAnalyzer()

    def conventional_step():
        network = builder.build(
            prepared.benchmark.floorplan,
            prepared.benchmark.topology,
            prepared.golden_plan.widths,
        )
        return analyzer.analyze(network)

    result = benchmark.pedantic(conventional_step, rounds=3, iterations=1)
    assert result.worst_ir_drop > 0
