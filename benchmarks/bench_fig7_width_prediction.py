"""Fig. 7: power-grid interconnect width prediction for ibmpg2.

Fig. 7(a) is the correlation scatter of predicted versus golden widths and
Fig. 7(b) the error histogram of (golden - predicted), both for the ibmpg2
benchmark.  The paper's observation is that the scatter hugs the diagonal
and the histogram peaks at zero error.

This bench evaluates the trained width model on the gamma = 10 % perturbed
test set of ibmpg2 (the paper's test-set construction), writes both figure
artefacts as CSV, prints an ASCII histogram and times the width-prediction
forward pass — the operation whose speed makes Table IV possible.
"""

from __future__ import annotations

import numpy as np

from repro.core import format_key_values, width_prediction_study
from repro.io import ascii_histogram, write_csv, write_json


def test_fig7_width_prediction_correlation_and_histogram(
    benchmark, prepared_ibmpg2, results_dir
):
    """Regenerate Fig. 7(a,b) and time the per-interconnect width prediction."""
    framework = prepared_ibmpg2.framework
    spec = framework.default_perturbation(gamma=0.10)
    _, test_dataset, _ = framework.predict_for_perturbation(prepared_ibmpg2.benchmark, spec)

    predictions = benchmark(
        framework.width_predictor.predict_samples, test_dataset.features
    )

    study = width_prediction_study(test_dataset.widths, predictions, num_bins=41)
    print()
    print(
        format_key_values(
            {
                "benchmark": "ibmpg2",
                "interconnect samples": study.golden.size,
                "pearson correlation (Fig. 7a)": study.correlation,
                "r2 score": study.r2,
                "mse (um^2)": study.mse,
                "overpredicted": study.histogram.overpredicted,
                "underpredicted": study.histogram.underpredicted,
                "histogram peak (um)": study.histogram.peak_bin_center,
            },
            title="Fig. 7: width prediction quality (ibmpg2)",
        )
    )
    print()
    print(
        ascii_histogram(
            study.histogram.counts,
            study.histogram.bin_edges,
            width=40,
            title="Fig. 7(b): golden - predicted width error histogram (um)",
        )
    )

    write_csv(
        [
            {"golden_um": float(g), "predicted_um": float(p)}
            for g, p in zip(study.golden, study.predicted)
        ],
        results_dir / "fig7a_correlation_scatter.csv",
    )
    write_csv(
        [
            {
                "bin_center_um": float(
                    (study.histogram.bin_edges[i] + study.histogram.bin_edges[i + 1]) / 2
                ),
                "count": int(study.histogram.counts[i]),
            }
            for i in range(study.histogram.counts.size)
        ],
        results_dir / "fig7b_error_histogram.csv",
    )
    write_json(
        {
            "correlation": study.correlation,
            "r2": study.r2,
            "mse": study.mse,
            "peak_bin_center": study.histogram.peak_bin_center,
        },
        results_dir / "fig7_summary.json",
    )

    # Paper shape: predictions strongly correlated with golden widths and the
    # error histogram peaks at (near) zero.
    assert study.correlation > 0.9
    assert abs(study.histogram.peak_bin_center) < 0.5 * np.std(study.golden)


def test_fig7_line_width_aggregation(benchmark, prepared_ibmpg2):
    """Time the per-line aggregation step and check it tracks the golden widths."""
    framework = prepared_ibmpg2.framework
    bench_obj = prepared_ibmpg2.benchmark

    result = benchmark(
        framework.width_predictor.predict_design, bench_obj.floorplan, bench_obj.topology
    )
    golden = prepared_ibmpg2.golden_plan.widths
    correlation = float(np.corrcoef(result.line_widths, golden)[0, 1])
    print(f"\nper-line width correlation vs golden (ibmpg2): {correlation:.3f}")
    assert correlation > 0.8
