"""Fig. 10: memory profile of the PowerPlanningDL flow over time.

The paper profiles its framework with mprof and plots memory versus time for
ibmpg2 and ibmpg6 (peaking at 318 MiB and 841 MiB of process RSS
respectively).  mprof is not available offline, so this bench uses the
tracemalloc-based profiler: it records the Python-heap usage over the whole
prediction flow (feature extraction, width prediction, IR-drop prediction),
writes the time series for both benchmarks and asserts the relative claim
that ibmpg6 needs more memory than ibmpg2.
"""

from __future__ import annotations

import numpy as np

from repro.core import PeakMemoryProfiler, format_key_values
from repro.io import ascii_series, write_csv, write_json


def _profile_flow(prepared, sample_interval=0.002):
    framework = prepared.framework
    profiler = PeakMemoryProfiler(sample_interval=sample_interval)

    def flow():
        return framework.predict_design(
            prepared.benchmark.floorplan, prepared.benchmark.topology
        )

    return profiler.profile(flow, label=prepared.name)


def test_fig10_memory_profiles(benchmark, prepared_ibmpg2, prepared_ibmpg6, results_dir):
    """Regenerate Fig. 10(a,b); time the profiled flow for ibmpg2."""
    profile2 = benchmark.pedantic(_profile_flow, args=(prepared_ibmpg2,), rounds=1, iterations=1)
    profile6 = _profile_flow(prepared_ibmpg6)

    summary = {}
    print()
    for label, profile in (("ibmpg2", profile2), ("ibmpg6", profile6)):
        times, current = profile.series()
        write_csv(
            [
                {"time_s": float(t), "current_MiB": float(m)}
                for t, m in zip(times, current)
            ],
            results_dir / f"fig10_{label}_memory_profile.csv",
        )
        summary[label] = {
            "peak_MiB": round(profile.peak_mib, 2),
            "duration_s": round(profile.duration, 4),
            "samples": len(times),
        }
        print(
            format_key_values(
                summary[label], title=f"Fig. 10 ({label}): memory profile of the DL flow"
            )
        )
        if len(times) > 1:
            print(
                ascii_series(
                    np.asarray(times),
                    np.asarray(current),
                    width=40,
                    height=8,
                    title=f"memory (MiB) vs time (s), {label}",
                )
            )
        print()
    write_json(summary, results_dir / "fig10_summary.json")
    print(
        "paper reports peak RSS: ibmpg2 318 MiB, ibmpg6 841 MiB (mprof); this repo reports "
        "Python-heap peaks, so absolute values are smaller but the ordering must match"
    )

    # Relative claim: the larger benchmark uses more memory.
    assert profile6.peak_mib > profile2.peak_mib
