#!/usr/bin/env python
"""Regression checker for the benchmark JSON records.

CI uploads every ``benchmarks/results/*.json`` record as a workflow
artifact and then runs this script, which fails the build when a recorded
speedup (or exactness invariant) falls below its acceptance bar.  Bars
that only hold on the full-size grids are skipped for records tagged
``"smoke": true`` (the tiny-grid CI runs), so smoke runs still exercise
the checker — including every exactness invariant — without asserting
full-scale performance.  Records from older benches without the tag fall
back to the ``scale`` heuristic.

Stdlib-only on purpose: it must run before (or without) the package being
installed.

Usage::

    python benchmarks/check_results.py [--results-dir benchmarks/results]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _gate_performance(record: dict) -> bool:
    """True when the record's performance bars should be enforced.

    The benches tag reduced-size runs with ``"smoke": true``; their
    speedup / throughput / fold-fraction bars are skipped (exactness
    invariants always apply).  Records without the tag — produced by an
    older bench — fall back to the full-scale heuristic: no ``scale``
    field (e.g. the engine micro-benchmark, which always runs the
    full-size grid) counts as full scale.
    """
    if "smoke" in record:
        return not bool(record["smoke"])
    return float(record.get("scale", 1.0)) == 1.0


def check_engine_batched_solve(record: dict) -> list[str]:
    problems = []
    if record.get("speedup", 0.0) < 3.0:
        problems.append(f"batched-solve speedup {record.get('speedup')} below the 3.0x bar")
    if record.get("batched_factorizations", 1) != 1:
        problems.append(
            f"batched sweep used {record.get('batched_factorizations')} factorizations, expected 1"
        )
    return problems


def check_planner_iteration(record: dict) -> list[str]:
    problems = []
    if _gate_performance(record) and record.get("iteration_build_speedup", 0.0) < 3.0:
        problems.append(
            f"planner iteration speedup {record.get('iteration_build_speedup')} "
            "below the 3.0x bar"
        )
    if _gate_performance(record) and not record.get("converged", False):
        problems.append("planner did not converge")
    if "incremental_speedup" not in record or "incremental_max_voltage_error" not in record:
        problems.append(
            "record lacks the incremental-update fields (incremental_speedup / "
            "incremental_max_voltage_error) — produced by an older bench? re-run it"
        )
    else:
        # The update must be exact wherever it ran — smoke runs included.
        if record["incremental_max_voltage_error"] > 1e-9:
            problems.append(
                f"incremental-update voltages diverge from the fresh factorization "
                f"by {record['incremental_max_voltage_error']} (bar: <= 1e-9)"
            )
        if _gate_performance(record) and record["incremental_speedup"] < 3.0:
            problems.append(
                f"incremental-update iteration speedup {record['incremental_speedup']} "
                "below the 3.0x bar"
            )
    return problems


def check_mega_sweep_sinks(record: dict) -> list[str]:
    problems = []
    if not record.get("exact_sinks_match", False):
        problems.append("streamed sinks did not match the dense reference bitwise")
    if record.get("factorizations", 1) != 1:
        problems.append(
            f"mega-sweep used {record.get('factorizations')} factorizations, expected 1"
        )
    if _gate_performance(record) and record.get("num_scenarios", 0) < 100_000:
        problems.append(
            f"full-scale mega-sweep ran {record.get('num_scenarios')} scenarios, "
            "expected >= 100000"
        )
    if "parallel_matches" not in record or "parallel_factorizations" not in record:
        problems.append(
            "record lacks the parallel-sweep fields (parallel_matches / "
            "parallel_factorizations) — produced by an older bench? re-run it"
        )
    else:
        if not record["parallel_matches"]:
            problems.append(
                "parallel mega-sweep did not match the sequential sweep bitwise"
            )
        if record["parallel_factorizations"] != 1:
            problems.append(
                f"parallel mega-sweep used {record['parallel_factorizations']} "
                "factorizations, expected 1"
            )
    # The throughput bar only holds where parallel chunk solving can
    # actually run concurrently: full-scale grids on a multi-core runner.
    if (
        _gate_performance(record)
        and int(record.get("cpu_count", 1)) >= 2
        and record.get("parallel_speedup", 0.0) < 1.5
    ):
        problems.append(
            f"parallel mega-sweep speedup {record.get('parallel_speedup')} below "
            f"the 1.5x bar on a {record.get('cpu_count')}-core runner"
        )
    if "process_matches" not in record or "process_factorizations" not in record:
        problems.append(
            "record lacks the process-sharded fields (process_matches / "
            "process_factorizations) — produced by an older bench? re-run it"
        )
    else:
        if not record["process_matches"]:
            problems.append(
                "process-sharded mega-sweep did not match the sequential sweep "
                "bitwise for the exact sinks / reductions"
            )
        if record["process_factorizations"] != 1:
            problems.append(
                f"process-sharded mega-sweep left {record['process_factorizations']} "
                "factorizations in the parent engine, expected 1 (cache warm)"
            )
    # Process sharding pays a pool + per-worker-factorization overhead, so
    # its >= 2x bar only holds with enough real cores to amortise it.
    if (
        _gate_performance(record)
        and int(record.get("cpu_count", 1)) >= 4
        and record.get("process_speedup", 0.0) < 2.0
    ):
        problems.append(
            f"process-sharded mega-sweep speedup {record.get('process_speedup')} "
            f"below the 2.0x bar on a {record.get('cpu_count')}-core runner"
        )
    if "hybrid_matches" not in record or "hybrid_payload_bytes_shared" not in record:
        problems.append(
            "record lacks the hybrid-executor fields (hybrid_matches / "
            "hybrid_payload_bytes_shared) — produced by an older bench? re-run it"
        )
    else:
        # Bitwise identity is unconditional — smoke runs included.
        if not record["hybrid_matches"]:
            problems.append(
                "hybrid mega-sweep did not match the sequential sweep bitwise "
                "for the exact sinks / reductions"
            )
        # At full scale the shared-memory payload path must actually have
        # carried the grid: the zero-copy claim is measured, not asserted.
        if _gate_performance(record) and record["hybrid_payload_bytes_shared"] <= 0:
            problems.append(
                "hybrid mega-sweep shipped its payload by pickle "
                "(hybrid_payload_bytes_shared == 0); the shared-memory path "
                "was not exercised"
            )
    # Multiplying the two axes must beat each axis alone — but only where
    # there are enough real cores for both axes to make progress at once.
    if _gate_performance(record) and int(record.get("cpu_count", 1)) >= 4:
        single_axis = max(
            record.get("parallel_speedup", 0.0), record.get("process_speedup", 0.0)
        )
        if record.get("hybrid_speedup", 0.0) < single_axis:
            problems.append(
                f"hybrid mega-sweep speedup {record.get('hybrid_speedup')} below "
                f"the best single-axis speedup {single_axis} on a "
                f"{record.get('cpu_count')}-core runner"
            )
    if "remote_matches" not in record or "sketch_rel_error" not in record:
        problems.append(
            "record lacks the remote-executor fields (remote_matches / "
            "sketch_rel_error) — produced by an older bench? re-run it"
        )
    else:
        if not record["remote_matches"]:
            problems.append(
                "remote-fleet mega-sweep did not match the sequential sweep "
                "bitwise for the mergeable sinks / reductions"
            )
        if record.get("remote_factorizations", 1) != 1:
            problems.append(
                f"remote mega-sweep left {record.get('remote_factorizations')} "
                "factorizations in the parent engine, expected 1 (cache warm)"
            )
        # The sketch's accuracy contract is unconditional — smoke included.
        bound = float(record.get("sketch_relative_error_bound", 0.01))
        if record["sketch_rel_error"] > bound:
            problems.append(
                f"quantile sketch relative error {record['sketch_rel_error']} "
                f"above its documented {bound} bound"
            )
    # Like process sharding, the remote path pays coordinator + embedded
    # worker-spawn overhead, so its >= 1.5x bar needs real cores.
    if (
        _gate_performance(record)
        and int(record.get("cpu_count", 1)) >= 4
        and record.get("remote_speedup", 0.0) < 1.5
    ):
        problems.append(
            f"remote-fleet mega-sweep speedup {record.get('remote_speedup')} "
            f"below the 1.5x bar on a {record.get('cpu_count')}-core runner"
        )
    # The vectorised P² fold must stay a small fraction of the solve, or
    # the fold serialises parallel sweeps again.
    if _gate_performance(record) and record.get("p2_fold_fraction", 0.0) >= 0.25:
        problems.append(
            f"P2 fold consumed {record.get('p2_fold_fraction')} of the sweep; "
            "the fold is the bottleneck again (bar: < 0.25)"
        )
    return problems


def check_planner_search(record: dict) -> list[str]:
    problems = []
    baseline = record.get("baseline", {})
    exact = record.get("exact_search", {})
    ranker = record.get("ranker_search", {})
    if not baseline or not exact or not ranker:
        return [
            "record lacks the baseline / exact_search / ranker_search sections "
            "— produced by an older bench? re-run it"
        ]
    # Exactness: every committed candidate must match the oracle, smoke
    # runs included.
    oracle_error = exact.get("oracle_max_voltage_error")
    if oracle_error is None or oracle_error > 1e-9:
        problems.append(
            f"committed search candidates diverge from the fresh-factorization "
            f"oracle by {oracle_error} (bar: <= 1e-9)"
        )
    # Counter bookkeeping must balance in both search modes.
    for label, stats in (("exact_search", exact), ("ranker_search", ranker)):
        generated = stats.get("candidates_generated", -1)
        pruned = stats.get("candidates_pruned", -1)
        solved = stats.get("candidates_solved", -1)
        if generated < 0 or pruned < 0 or solved < 0:
            problems.append(f"{label} record lacks the candidate counters")
        elif generated != pruned + solved:
            problems.append(
                f"{label} counters do not balance: generated {generated} != "
                f"pruned {pruned} + solved {solved}"
            )
    if exact.get("candidates_pruned", 0) != 0:
        problems.append("exact search pruned candidates; it must solve every one")
    if ranker.get("candidates_pruned", 0) <= 0:
        problems.append("ranker search pruned nothing; the model gate did not run")
    if not _gate_performance(record):
        return problems
    # Full-scale bars: search quality and solve economy.
    if exact.get("final_worst_ir_drop", float("inf")) > (
        baseline.get("final_worst_ir_drop", 0.0) + 1e-12
    ):
        problems.append(
            f"exact search final drop {exact.get('final_worst_ir_drop')} worse "
            f"than the one-move baseline {baseline.get('final_worst_ir_drop')}"
        )
    if record.get("solve_ratio_vs_baseline", 0.0) < 3.0:
        problems.append(
            f"search pays only {record.get('solve_ratio_vs_baseline')}x fewer "
            "solves per committed move (bar: 3.0x)"
        )
    if ranker.get("relative_loss_vs_exact", 1.0) > 0.01:
        problems.append(
            f"ranker-pruned search lost {ranker.get('relative_loss_vs_exact')} "
            "final drop vs the exact search (bar: <= 1%)"
        )
    return problems


CHECKS = {
    "bench_engine_batched_solve.json": check_engine_batched_solve,
    "bench_planner_iteration.json": check_planner_iteration,
    "bench_mega_sweep_sinks.json": check_mega_sweep_sinks,
    "bench_planner_search.json": check_planner_search,
}

SUMMARY_FIELDS = {
    "bench_engine_batched_solve.json": ("speedup",),
    "bench_planner_iteration.json": ("iteration_build_speedup", "incremental_speedup"),
    "bench_mega_sweep_sinks.json": (
        "scenarios_per_second",
        "parallel_speedup",
        "process_speedup",
        "hybrid_speedup",
        "hybrid_payload_bytes_shared",
        "remote_speedup",
    ),
    "bench_planner_search.json": ("solve_ratio_vs_baseline",),
}
"""Key numbers each bench contributes to the compact ``BENCH_summary.json``."""

SUMMARY_NAME = "BENCH_summary.json"


def write_summary(results_dir: Path, records: dict, failed: set) -> Path:
    """Emit the one-line-per-bench summary CI uploads with the raw records.

    JSON-lines on purpose: one self-contained object per bench, so the
    perf trajectory stays greppable across PR artifacts
    (``grep hybrid_speedup */BENCH_summary.json``).
    """
    lines = []
    for name in sorted(records):
        record = records[name]
        entry = {
            "bench": name.removeprefix("bench_").removesuffix(".json"),
            "smoke": not _gate_performance(record),
            "ok": name not in failed,
        }
        for field in SUMMARY_FIELDS.get(name, ()):
            value = record.get(field)
            if isinstance(value, float):
                value = round(value, 4)
            entry[field] = value
        lines.append(json.dumps(entry))
    path = results_dir / SUMMARY_NAME
    path.write_text("\n".join(lines) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=Path(__file__).parent / "results",
        help="directory holding the benchmark JSON records",
    )
    args = parser.parse_args(argv)

    if not args.results_dir.is_dir():
        print(f"no results directory at {args.results_dir}; nothing to check")
        return 0

    failures = []
    checked = 0
    records: dict[str, dict] = {}
    failed: set[str] = set()
    for path in sorted(args.results_dir.glob("*.json")):
        if path.name == SUMMARY_NAME:
            continue  # our own output from a previous run
        check = CHECKS.get(path.name)
        if check is None:
            print(f"  - {path.name}: no acceptance bars registered, skipped")
            continue
        try:
            record = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            failures.append(f"{path.name}: unreadable JSON ({exc})")
            continue
        problems = check(record)
        checked += 1
        records[path.name] = record
        scale = record.get("scale", 1.0)
        if problems:
            failures.extend(f"{path.name}: {problem}" for problem in problems)
            failed.add(path.name)
            print(f"  - {path.name} (scale={scale}): FAIL")
        else:
            print(f"  - {path.name} (scale={scale}): ok")

    if records:
        summary_path = write_summary(args.results_dir, records, failed)
        print(f"compact summary written to {summary_path}")

    if failures:
        print(f"\n{len(failures)} benchmark regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"{checked} benchmark record(s) within acceptance bars")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
