"""Table III / Fig. 8: worst-case IR drop, conventional vs. PowerPlanningDL.

Table III compares the worst-case IR drop obtained by the conventional
analysis with the value predicted by PowerPlanningDL for every benchmark;
Fig. 8 shows the 100 x 100 IR-drop maps of ibmpg2 and ibmpg6 under both
flows.  The paper's claim is that the predicted values are close to the
conventional ones (within a couple of mV on their testbed).

This bench prints the Table III rows for the whole synthetic suite, writes
the four Fig. 8 maps as CSV matrices plus ASCII previews, and times the
conventional analysis of ibmpg2 (the quantity the DL flow avoids).
"""

from __future__ import annotations

import numpy as np

from conftest import suite_names

from repro.analysis import IRDropAnalyzer, ir_drop_map
from repro.core import compare_worst_ir_drop, format_table
from repro.io import ascii_heatmap, write_csv, write_json, write_matrix


def test_table3_worst_case_ir_drop(benchmark, benchmark_cache, results_dir):
    """Regenerate Table III over the suite; time one conventional analysis."""
    rows = []
    for name in suite_names():
        prepared = benchmark_cache.get(name)
        comparison = compare_worst_ir_drop(prepared.golden_plan, prepared.nominal_prediction)
        rows.append(
            {
                "benchmark": name,
                "conventional_mV": round(comparison.conventional_mv, 1),
                "powerplanningdl_mV": round(comparison.predicted_mv, 1),
                "relative_error": round(comparison.relative_error, 3),
            }
        )

    prepared2 = benchmark_cache.get("ibmpg2")
    benchmark(IRDropAnalyzer().analyze, prepared2.golden_plan.network)

    print()
    print(
        format_table(
            rows,
            title="Table III: worst-case IR drop, conventional vs. PowerPlanningDL (mV)",
        )
    )
    print(
        "paper reports (mV): ibmpg1 69.8/68.2  ibmpg2 36.3/36.1  ibmpg3 18.1/18.0  "
        "ibmpg4 4.0/4.1  ibmpg5 4.3/4.2  ibmpg6 13.1/13.0"
    )
    write_csv(rows, results_dir / "table3_worst_ir_drop.csv")

    # Shape claims: every prediction is the same order of magnitude as the
    # conventional value, and the benchmark with the largest conventional
    # drop also has the largest predicted drop.
    assert all(row["relative_error"] < 1.0 for row in rows)
    conventional = {row["benchmark"]: row["conventional_mV"] for row in rows}
    predicted = {row["benchmark"]: row["powerplanningdl_mV"] for row in rows}
    assert max(conventional, key=conventional.get) == max(predicted, key=predicted.get)


def test_fig8_ir_drop_maps(benchmark, prepared_ibmpg2, prepared_ibmpg6, results_dir):
    """Regenerate the four Fig. 8 IR-drop maps (ibmpg2 & ibmpg6, both flows)."""

    def build_maps(prepared):
        conventional = ir_drop_map(
            prepared.golden_plan.network, prepared.golden_plan.ir_result, resolution=100
        )
        estimator = prepared.framework.ir_estimator
        predicted = estimator.ir_drop_map(
            prepared.benchmark.floorplan,
            prepared.benchmark.topology,
            prepared.nominal_prediction.ir_drop,
            resolution=100,
        )
        return conventional, predicted

    conventional2, predicted2 = benchmark(build_maps, prepared_ibmpg2)
    conventional6, predicted6 = build_maps(prepared_ibmpg6)

    maps = {
        "fig8a_ibmpg2_conventional": conventional2,
        "fig8b_ibmpg2_powerplanningdl": predicted2,
        "fig8c_ibmpg6_conventional": conventional6,
        "fig8d_ibmpg6_powerplanningdl": predicted6,
    }
    summary = {}
    print()
    for label, grid_map in maps.items():
        write_matrix(grid_map * 1000.0, results_dir / f"{label}.csv", header=f"{label} (mV)")
        summary[label] = {
            "min_mV": float(grid_map.min() * 1000.0),
            "max_mV": float(grid_map.max() * 1000.0),
            "mean_mV": float(grid_map.mean() * 1000.0),
        }
        print(ascii_heatmap(grid_map * 1000.0, width=50, height=14, title=label, unit=" mV"))
        print()
    write_json(summary, results_dir / "fig8_map_summary.json")

    # The predicted maps must place their hot spot in the same region as the
    # conventional maps (within a quarter of the die in each direction).
    for conventional, predicted in ((conventional2, predicted2), (conventional6, predicted6)):
        conv_y, conv_x = np.unravel_index(np.argmax(conventional), conventional.shape)
        pred_y, pred_x = np.unravel_index(np.argmax(predicted), predicted.shape)
        assert abs(conv_x - pred_x) <= 35
        assert abs(conv_y - pred_y) <= 35
