"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  The
expensive artefacts — the conventional golden plan and the trained
PowerPlanningDL framework for each synthetic benchmark — are built once per
session and cached here, so the individual benches only time the operation
they are about.

Environment variables:
    REPRO_BENCH_SUITE: Comma-separated benchmark names to run (default: the
        full 8-benchmark suite of the paper's Table II).
    REPRO_BENCH_EPOCHS: Training epochs for the width model (default 60).
    REPRO_BENCH_SCALE: Global grid scale factor (default 1.0).  Values < 1
        shrink every benchmark's stripe counts — used by the CI smoke run
        to exercise the bench entry points on tiny grids.  Benches gate
        their full-size assertions (speedup bars, curve shapes) on
        ``scale == 1``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.core import PowerPlanningDL, PredictedDesign
from repro.design import PowerPlanResult
from repro.grid import SUITE_NAMES, SyntheticBenchmark, SyntheticIBMSuite
from repro.nn import RegressorConfig, TrainingConfig

RESULTS_DIR = Path(__file__).parent / "results"
"""Directory where every bench writes its CSV/JSON artefacts."""


def suite_names() -> tuple[str, ...]:
    """Benchmarks to run, controlled by REPRO_BENCH_SUITE."""
    override = os.environ.get("REPRO_BENCH_SUITE", "").strip()
    if not override:
        return SUITE_NAMES
    names = tuple(name.strip() for name in override.split(",") if name.strip())
    unknown = [name for name in names if name not in SUITE_NAMES]
    if unknown:
        raise ValueError(f"unknown benchmarks in REPRO_BENCH_SUITE: {unknown}")
    return names


def training_epochs() -> int:
    """Width-model training epochs, controlled by REPRO_BENCH_EPOCHS."""
    return int(os.environ.get("REPRO_BENCH_EPOCHS", "60"))


def bench_scale() -> float:
    """Global benchmark grid scale, controlled by REPRO_BENCH_SCALE."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1"))


def full_scale() -> bool:
    """True when running the full-size grids (assertions are gated on this)."""
    return bench_scale() == 1.0


def bench_regressor_config() -> RegressorConfig:
    """The paper's 10-hidden-layer topology with harness-friendly epochs."""
    return RegressorConfig(
        hidden_layers=10,
        hidden_width=32,
        training=TrainingConfig(
            epochs=training_epochs(),
            batch_size=128,
            optimizer="adam",
            loss="mse",
            early_stopping_patience=0,
            seed=0,
        ),
        seed=0,
    )


@dataclass
class PreparedBenchmark:
    """Everything the benches need for one synthetic IBM benchmark."""

    benchmark: SyntheticBenchmark
    framework: PowerPlanningDL
    golden_plan: PowerPlanResult
    nominal_prediction: PredictedDesign

    @property
    def name(self) -> str:
        return self.benchmark.name


class BenchmarkCache:
    """Session-level cache of prepared benchmarks (train each at most once)."""

    def __init__(self) -> None:
        self._suite = SyntheticIBMSuite(scale=bench_scale())
        self._prepared: dict[str, PreparedBenchmark] = {}

    def get(self, name: str) -> PreparedBenchmark:
        if name not in self._prepared:
            benchmark = self._suite.load(name)
            framework = PowerPlanningDL(benchmark.technology, bench_regressor_config())
            trained = framework.train_on_benchmark(benchmark)
            nominal = framework.predict_design(benchmark.floorplan, benchmark.topology)
            self._prepared[name] = PreparedBenchmark(
                benchmark=benchmark,
                framework=framework,
                golden_plan=trained.benchmark_dataset.golden_plan,
                nominal_prediction=nominal,
            )
        return self._prepared[name]


@pytest.fixture(scope="session")
def benchmark_cache() -> BenchmarkCache:
    """Cache of trained frameworks shared across all bench modules."""
    return BenchmarkCache()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory for result artefacts (created on first use)."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def prepared_ibmpg2(benchmark_cache) -> PreparedBenchmark:
    """ibmpg2, the benchmark the paper uses for Figs. 7, 8(a,b), 9(a), 10(a)."""
    return benchmark_cache.get("ibmpg2")


@pytest.fixture(scope="session")
def prepared_ibmpg6(benchmark_cache) -> PreparedBenchmark:
    """ibmpg6, the benchmark the paper uses for Figs. 8(c,d), 9(b), 10(b)."""
    return benchmark_cache.get("ibmpg6")
