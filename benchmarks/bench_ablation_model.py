"""Ablation benches for the design choices called out in DESIGN.md.

Three ablations beyond the paper's own tables:

* **hidden-layer depth** — the paper fixes 10 hidden layers "obtained by
  hyperparameter optimization"; this bench sweeps the depth and reports the
  validation MSE of each, reproducing that selection process;
* **Kirchhoff estimator vs. full solve** — the accuracy/time trade-off that
  produces the Table IV speedup;
* **feature scaling** — the width model trains on features spanning five
  orders of magnitude, so disabling standardisation should hurt.
"""

from __future__ import annotations

import time

from repro.analysis import IRDropAnalyzer
from repro.core import format_table
from repro.grid import GridBuilder
from repro.io import write_csv
from repro.nn import (
    HyperparameterSearch,
    MultiTargetRegressor,
    RegressorConfig,
    SearchSpace,
    TrainingConfig,
)

_QUICK_TRAINING = TrainingConfig(epochs=30, batch_size=128, early_stopping_patience=0, seed=0)


def test_ablation_hidden_layer_depth(benchmark, benchmark_cache, results_dir):
    """Sweep the hidden-layer count (the paper's hyper-parameter search)."""
    prepared = benchmark_cache.get("ibmpg1")
    dataset = prepared.framework.trained.benchmark_dataset.training

    base = RegressorConfig(hidden_layers=2, hidden_width=32, training=_QUICK_TRAINING, seed=0)
    space = SearchSpace(
        hidden_layers=(2, 4, 6, 10), hidden_width=(32,), learning_rate=(1e-3,), batch_size=(128,)
    )
    search = HyperparameterSearch(base, space, validation_fraction=0.25, seed=0)

    result = benchmark.pedantic(
        search.grid_search, args=(dataset.features, dataset.widths), rounds=1, iterations=1
    )

    rows = [
        {
            "hidden_layers": trial.parameters["hidden_layers"],
            "validation_mse": round(trial.validation_mse, 4),
            "validation_r2": round(trial.validation_r2, 3),
            "train_time_s": round(trial.train_time, 2),
        }
        for trial in result.trials
    ]
    print()
    print(format_table(rows, title="Ablation: hidden-layer depth (ibmpg1)"))
    print(f"selected depth: {result.best.parameters['hidden_layers']} (paper uses 10)")
    write_csv(rows, results_dir / "ablation_hidden_layers.csv")

    assert len(result.trials) == 4
    assert all(trial.validation_r2 > 0.5 for trial in result.trials)


def test_ablation_kirchhoff_vs_full_solve(benchmark, benchmark_cache, results_dir):
    """Accuracy/time trade-off of Algorithm 2 against the full MNA solve."""
    rows = []
    for name in ("ibmpg2", "ibmpg6"):
        prepared = benchmark_cache.get(name)
        widths = prepared.nominal_prediction.line_widths

        start = time.perf_counter()
        network = GridBuilder(prepared.benchmark.technology).build(
            prepared.benchmark.floorplan, prepared.benchmark.topology, widths
        )
        full = IRDropAnalyzer().analyze(network)
        full_time = time.perf_counter() - start

        estimator = prepared.framework.ir_estimator
        start = time.perf_counter()
        estimate = estimator.predict(
            prepared.benchmark.floorplan, prepared.benchmark.topology, widths
        )
        estimate_time = time.perf_counter() - start

        rows.append(
            {
                "benchmark": name,
                "full_solve_mV": round(full.worst_ir_drop_mv, 1),
                "kirchhoff_mV": round(estimate.worst_ir_drop_mv, 1),
                "full_solve_s": round(full_time, 4),
                "kirchhoff_s": round(estimate_time, 4),
                "time_ratio": round(full_time / max(estimate_time, 1e-9), 1),
            }
        )

    prepared2 = benchmark_cache.get("ibmpg2")
    benchmark(
        prepared2.framework.ir_estimator.predict,
        prepared2.benchmark.floorplan,
        prepared2.benchmark.topology,
        prepared2.nominal_prediction.line_widths,
    )

    print()
    print(format_table(rows, title="Ablation: Kirchhoff estimator vs. full MNA solve"))
    write_csv(rows, results_dir / "ablation_kirchhoff_vs_solve.csv")

    # The estimator must be much faster and land in the same order of magnitude.
    for row in rows:
        assert row["time_ratio"] > 1.0
        assert 1 / 3 <= row["kirchhoff_mV"] / row["full_solve_mV"] <= 3.0


def test_ablation_feature_scaling(benchmark, benchmark_cache, results_dir):
    """Disabling feature/target standardisation degrades the width model."""
    prepared = benchmark_cache.get("ibmpg1")
    dataset = prepared.framework.trained.benchmark_dataset.training
    train, test = dataset.split(test_fraction=0.25, seed=0)

    def fit_and_score(scale):
        config = RegressorConfig(
            hidden_layers=4,
            hidden_width=32,
            training=_QUICK_TRAINING,
            scale_features=scale,
            scale_targets=scale,
            seed=0,
        )
        model = MultiTargetRegressor(config)
        model.fit(train.features, train.widths)
        return model.score(test.features, test.widths)

    scaled_r2 = benchmark.pedantic(fit_and_score, args=(True,), rounds=1, iterations=1)
    unscaled_r2 = fit_and_score(False)

    rows = [
        {"configuration": "with standardisation", "test_r2": round(scaled_r2, 3)},
        {"configuration": "without standardisation", "test_r2": round(unscaled_r2, 3)},
    ]
    print()
    print(format_table(rows, title="Ablation: feature/target standardisation (ibmpg1)"))
    write_csv(rows, results_dir / "ablation_feature_scaling.csv")

    assert scaled_r2 > unscaled_r2
