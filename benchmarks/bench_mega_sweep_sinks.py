"""Mega-sweep benchmark: 1e5+ pad x load scenarios through streamed sinks.

The paper's value proposition is evaluating huge numbers of PDN scenarios
cheaply.  This bench drives the combined pad-voltage x load-perturbation
cross product (:meth:`BatchedAnalysisEngine.analyze_mega_sweep`) at
``>= 1e5`` scenarios on ``ibmpg1``, with the full sink stack attached —
P2 / reservoir quantiles, per-node histograms, exceedance counts and a
top-k shortlist — all in chunk-bounded memory: neither the dense
``(num_nodes, k)`` voltage matrix nor the ``(k, num_nodes)`` scenario
matrix is ever allocated (the cross product is generated per chunk).

Before the timed run, the exact-reduction sinks (histogram, exceedance,
top-k) and the streamed worst/mean reductions are verified **bitwise**
against a dense single-shot reference on a cross-product subset small
enough to materialise, and the reservoir quantile sink (sized to hold the
whole subset) is verified bitwise against ``numpy.quantile``.

After the timed sequential sweep, the same mega-sweep is re-run twice more:

* ``workers >= 2`` solver threads — the parallel chunk pipeline must
  produce **bitwise-identical** reductions and sink results (asserted),
  and the sequential-vs-threaded speedup is recorded (``>= 1.5x`` bar,
  multi-core full-scale runners only);
* the **process-sharded executor** at every tested shard count — the
  scenario range splits across worker processes, each with its own
  factorization, and the merged reductions plus every *exact* mergeable
  sink (histogram, exceedance, joint exceedance, top-k) must again be
  bitwise-identical (asserted; the reservoir merge is statistically
  resampled and recorded, not asserted).  The sequential-vs-process
  speedup is recorded and gated ``>= 2x`` by ``check_results.py`` on
  multi-core (``cpu_count >= 4``) full-scale runners;
* the **hybrid executor** (process shards each running the threaded chunk
  pipeline, with the grid shipped through one zero-copy shared-memory
  payload) at several ``shard_workers × threads_per_shard`` combinations
  — the merged reductions and every exact mergeable sink must again be
  bitwise-identical to the sequential sweep (asserted at every scale).
  The sequential-vs-hybrid speedup and ``payload_bytes_shared`` are
  recorded; ``check_results.py`` gates ``hybrid_speedup >=
  max(parallel_speedup, process_speedup)`` on ``>= 4``-core full-scale
  runners and ``payload_bytes_shared > 0`` everywhere, so the zero-copy
  claim is measured rather than asserted;
* the **remote fleet executor** (embedded localhost coordinator +
  workers) at 1 / 2 / non-divisor shard counts — the merged reductions,
  every exact mergeable sink and the deterministic quantile sketch must
  be bitwise-identical to the sequential sweep at every count (asserted),
  and the sequential-vs-remote speedup is recorded and gated ``>= 1.5x``
  on multi-core full-scale runners.  The sketch's maximum relative error
  against the dense rank quantiles is recorded and gated against its
  documented ``1%`` bound at every scale.

The vectorised P² fold is micro-benchmarked by replaying the sweep's
per-scenario worst-drop stream through a fresh sink: the replayed estimate
must match the in-sweep sink bitwise (the fold depends only on scenario
order) and, at full scale, the fold must cost well under the solve — the
fold is no longer the pipeline's bottleneck.

A JSON throughput record is written to ``benchmarks/results/`` for the CI
artifact upload and the regression checker (``check_results.py``).

Environment variables:
    REPRO_BENCH_SCALE: Global grid scale; scales the scenario counts down
        too (tiny-grid CI smoke gate).  Full-scale acceptance asserts
        >= 1e5 scenarios.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
from conftest import bench_scale, full_scale

from repro.analysis import (
    BatchedAnalysisEngine,
    ExceedanceCountSink,
    HybridExecutor,
    JointExceedanceSink,
    NodeHistogramSink,
    P2QuantileSink,
    ProcessShardedExecutor,
    QuantileSketchSink,
    RemoteExecutor,
    ReservoirQuantileSink,
    TopKScenarioSink,
)
from repro.core import format_key_values
from repro.grid import SyntheticIBMSuite, mega_sweep_matrices

BENCHMARK = "ibmpg1"
GAMMA = 0.2
SEED = 2020
FULL_NUM_LOADS = 400
FULL_NUM_PADS = 256
CHUNK_SIZE = 512
QUANTILES = (0.5, 0.9, 0.99)
TOP_K = 10
NUM_BINS = 32
REFERENCE_SCENARIO_BUDGET = 2048
MIN_FULL_SCALE_SCENARIOS = 100_000
PARALLEL_WORKERS = max(2, min(4, os.cpu_count() or 1))
PROCESS_SHARD_COUNTS = tuple(sorted({2, PARALLEL_WORKERS}))
HYBRID_CONFIGS = tuple(
    sorted({(2, 2), (max(2, (os.cpu_count() or 1) // 2), 2)})
)
"""(shard_workers, threads_per_shard) combinations; the last one is timed."""
REMOTE_WORKER_COUNTS = (1, 2, 3)
"""Single shard, even split and a non-divisor of the full scenario count."""
SKETCH_RELATIVE_ERROR = 0.01
"""Documented bound of the quantile sketch (checked against dense ranks)."""
P2_FOLD_BUDGET_FRACTION = 0.25
"""Full-scale bar: the P² fold must stay below this fraction of the solve."""


def scenario_counts(scale: float) -> tuple[int, int]:
    """Load / pad row counts, scaled with the grid for the CI smoke run."""
    return max(6, round(FULL_NUM_LOADS * scale)), max(4, round(FULL_NUM_PADS * scale))


def build_sinks(nominal_worst: float, reservoir_capacity: int) -> dict:
    """One fresh instance of every sink the bench exercises."""
    return {
        "p2": P2QuantileSink(QUANTILES),
        **mergeable_sinks(nominal_worst, reservoir_capacity),
    }


def mergeable_sinks(nominal_worst: float, reservoir_capacity: int) -> dict:
    """The sink stack minus P² — everything the process shards can merge."""
    return {
        "reservoir": ReservoirQuantileSink(reservoir_capacity, QUANTILES, seed=SEED),
        "sketch": QuantileSketchSink(QUANTILES, relative_error=SKETCH_RELATIVE_ERROR),
        "histogram": NodeHistogramSink.uniform(0.0, max(2.0 * nominal_worst, 1e-6), NUM_BINS),
        "exceedance": ExceedanceCountSink(nominal_worst),
        "joint": JointExceedanceSink(nominal_worst),
        "topk": TopKScenarioSink(TOP_K),
    }


def dense_reference(engine, grid, load_rows, pad_matrix, edges, threshold):
    """Single-shot dense solve of a small cross product + numpy reductions."""
    num_pads = pad_matrix.shape[0]
    dense = engine.analyze_pad_batch(
        grid,
        np.tile(pad_matrix, (load_rows.shape[0], 1)),
        load_matrix=np.repeat(load_rows, num_pads, axis=0),
    )
    drops = dense.compiled.vdd - dense.voltages
    counts = np.empty((drops.shape[0], len(edges) - 1), dtype=np.int64)
    for node in range(drops.shape[0]):
        counts[node] = np.histogram(drops[node], bins=edges)[0]
    # Per-scenario reductions over contiguous rows, matching the engine's
    # fixed floating-point summation order.
    rows = np.ascontiguousarray(drops.T)
    worst = rows.max(axis=1)
    order = np.lexsort((np.arange(worst.size), -worst))[:TOP_K]
    return {
        "worst": worst,
        "average": rows.mean(axis=1),
        "histogram_counts": counts,
        "underflow": (drops < edges[0]).sum(axis=1),
        "overflow": (drops > edges[-1]).sum(axis=1),
        "exceedance": (drops > threshold).sum(axis=1),
        "joint_counts": np.bincount((drops > threshold).sum(axis=0)),
        "topk_index": order,
        "topk_value": worst[order],
        "topk_node": rows.argmax(axis=1)[order],
        "quantiles": np.quantile(worst, QUANTILES),
        # The sketch targets the dense rank quantile (floor(q * (n - 1))),
        # i.e. numpy's "lower" method, within its relative-error bound.
        "quantiles_lower": np.quantile(worst, QUANTILES, method="lower"),
    }


def test_mega_sweep_sinks(benchmark, results_dir):
    """>= 1e5 streamed scenarios; exact sinks bitwise-equal to dense."""
    scale = bench_scale()
    suite = SyntheticIBMSuite(scale=scale)
    bench = suite.load(BENCHMARK)
    grid = bench.build_uniform_grid(5.0)
    num_loads, num_pads = scenario_counts(scale)
    load_matrix, pad_matrix = mega_sweep_matrices(
        grid, bench.floorplan, GAMMA, num_loads, num_pads, seed=SEED
    )

    engine = BatchedAnalysisEngine()
    nominal = engine.analyze(grid)

    # --- Exactness gate: streamed sinks vs a dense single-shot reference
    # on a materialisable cross-product subset (loads-outer ordering).
    ref_loads = max(1, min(num_loads, REFERENCE_SCENARIO_BUDGET // num_pads))
    ref_scenarios = ref_loads * num_pads
    ref_sinks = build_sinks(nominal.worst_ir_drop, reservoir_capacity=ref_scenarios)
    streamed_ref = engine.analyze_mega_sweep(
        grid,
        load_matrix[:ref_loads],
        pad_matrix,
        chunk_size=max(1, ref_scenarios // 7),  # deliberately not a divisor
        sinks=tuple(ref_sinks.values()),
    )
    edges = ref_sinks["histogram"].edges
    reference = dense_reference(
        engine, grid, load_matrix[:ref_loads], pad_matrix, edges, nominal.worst_ir_drop
    )

    assert np.array_equal(streamed_ref.worst_ir_drop, reference["worst"])
    assert np.array_equal(streamed_ref.average_ir_drop, reference["average"])
    histogram = ref_sinks["histogram"].result()
    assert np.array_equal(histogram.counts, reference["histogram_counts"])
    assert np.array_equal(histogram.underflow, reference["underflow"])
    assert np.array_equal(histogram.overflow, reference["overflow"])
    exceedance = ref_sinks["exceedance"].result()
    assert np.array_equal(exceedance.counts, reference["exceedance"])
    joint = ref_sinks["joint"].result()
    assert np.array_equal(joint.violating_node_counts, reference["joint_counts"])
    topk = ref_sinks["topk"].result()
    assert np.array_equal(topk.scenario_index, reference["topk_index"])
    assert np.array_equal(topk.worst_ir_drop, reference["topk_value"])
    assert np.array_equal(topk.worst_node_index, reference["topk_node"])
    # Reservoir sized to the whole subset == exact empirical quantiles.
    reservoir = ref_sinks["reservoir"].result()
    assert reservoir.exact
    assert np.array_equal(reservoir.values, reference["quantiles"])
    # The sketch is approximate by design; gate it against its documented
    # relative-error bound at the dense rank quantiles.
    ref_sketch = ref_sinks["sketch"].result()
    ref_sketch_error = float(
        np.max(
            np.abs(ref_sketch.values - reference["quantiles_lower"])
            / reference["quantiles_lower"]
        )
    )
    assert ref_sketch_error <= SKETCH_RELATIVE_ERROR
    exact_sinks_match = True

    # --- Timed full mega-sweep, chunk-bounded memory, one factorization.
    sweep_engine = BatchedAnalysisEngine()
    sinks = build_sinks(nominal.worst_ir_drop, reservoir_capacity=4096)
    result = benchmark.pedantic(
        # workers=1 pinned: the baseline must stay sequential even when
        # REPRO_TEST_WORKERS is exported, or the speedup record lies.
        lambda: sweep_engine.analyze_mega_sweep(
            grid,
            load_matrix,
            pad_matrix,
            chunk_size=CHUNK_SIZE,
            sinks=tuple(sinks.values()),
            workers=1,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.num_scenarios == num_loads * num_pads
    assert sweep_engine.cache_info().factorizations == 1
    if full_scale():
        assert result.num_scenarios >= MIN_FULL_SCALE_SCENARIOS

    p2_estimate = sinks["p2"].result()
    reservoir_estimate = sinks["reservoir"].result()
    sketch_estimate = sinks["sketch"].result()
    sketch_reference = np.quantile(result.worst_ir_drop, QUANTILES, method="lower")
    sketch_rel_error = float(
        np.max(np.abs(sketch_estimate.values - sketch_reference) / sketch_reference)
    )
    assert sketch_rel_error <= SKETCH_RELATIVE_ERROR
    exceedance = sinks["exceedance"].result()
    joint = sinks["joint"].result()
    topk = sinks["topk"].result()
    dense_voltage_bytes = 8 * result.compiled.num_nodes * result.num_scenarios
    chunk_bytes = 8 * result.compiled.num_nodes * CHUNK_SIZE

    # --- P² fold micro-benchmark: replay the sweep's worst-drop stream
    # through a fresh sink.  The vectorised multi-estimator batch step
    # must (a) reproduce the in-sweep estimate bitwise — the fold depends
    # only on scenario order, not on chunking — and (b) cost a small
    # fraction of the solve, i.e. the fold is no longer the bottleneck
    # that serialised parallel sweeps.
    p2_replay = P2QuantileSink(QUANTILES)
    p2_replay.bind(result.compiled, result.num_scenarios)
    worst_stream = result.worst_ir_drop
    fold_start = time.perf_counter()
    for begin in range(0, worst_stream.size, CHUNK_SIZE):
        p2_replay._consume_scalars(worst_stream[begin : begin + CHUNK_SIZE], begin)
    p2_fold_seconds = time.perf_counter() - fold_start
    p2_fold_fraction = p2_fold_seconds / result.analysis_time if result.analysis_time else 0.0
    assert np.array_equal(p2_replay.result().values, p2_estimate.values)
    if full_scale():
        assert p2_fold_fraction < P2_FOLD_BUDGET_FRACTION, (
            f"P² fold took {p2_fold_fraction:.1%} of the sweep — it is the "
            "bottleneck again"
        )

    # --- Parallel chunk pipeline: same sweep on a thread pool.  Ordered
    # sink folding makes every reduction and sink result bitwise-identical;
    # the speedup is recorded and gated (multi-core runners only) by
    # check_results.py.
    parallel_engine = BatchedAnalysisEngine()
    parallel_sinks = build_sinks(nominal.worst_ir_drop, reservoir_capacity=4096)
    parallel = parallel_engine.analyze_mega_sweep(
        grid,
        load_matrix,
        pad_matrix,
        chunk_size=CHUNK_SIZE,
        sinks=tuple(parallel_sinks.values()),
        workers=PARALLEL_WORKERS,
    )
    parallel_histogram = parallel_sinks["histogram"].result()
    sequential_histogram = sinks["histogram"].result()
    parallel_topk = parallel_sinks["topk"].result()
    parallel_matches = all(
        (
            np.array_equal(parallel.worst_ir_drop, result.worst_ir_drop),
            np.array_equal(parallel.average_ir_drop, result.average_ir_drop),
            np.array_equal(parallel.worst_node_index, result.worst_node_index),
            np.array_equal(parallel_histogram.counts, sequential_histogram.counts),
            np.array_equal(
                parallel_sinks["exceedance"].result().counts, exceedance.counts
            ),
            np.array_equal(
                parallel_sinks["joint"].result().violating_node_counts,
                joint.violating_node_counts,
            ),
            np.array_equal(parallel_topk.scenario_index, topk.scenario_index),
            np.array_equal(parallel_topk.worst_ir_drop, topk.worst_ir_drop),
            np.array_equal(parallel_sinks["p2"].result().values, p2_estimate.values),
            np.array_equal(
                parallel_sinks["reservoir"].result().values, reservoir_estimate.values
            ),
            np.array_equal(parallel_sinks["sketch"].result().values, sketch_estimate.values),
        )
    )
    assert parallel_matches
    assert parallel_engine.cache_info().factorizations == 1
    parallel_speedup = (
        result.analysis_time / parallel.analysis_time if parallel.analysis_time > 0 else 0.0
    )

    # --- Process-sharded executor: the scenario range splits across
    # worker processes (one factorization and one fold each); the merged
    # reductions and every exact mergeable sink must be bitwise-identical
    # to the sequential sweep at every tested shard count.  The largest
    # shard count is timed for the recorded speedup (gated >= 2x by
    # check_results.py on multi-core full-scale runners).
    process_matches = True
    process_elapsed = 0.0
    process_factorizations = 0
    for shards in PROCESS_SHARD_COUNTS:
        process_engine = BatchedAnalysisEngine()
        process_sinks = mergeable_sinks(nominal.worst_ir_drop, reservoir_capacity=4096)
        process = process_engine.analyze_mega_sweep(
            grid,
            load_matrix,
            pad_matrix,
            chunk_size=CHUNK_SIZE,
            sinks=tuple(process_sinks.values()),
            executor=ProcessShardedExecutor(shards=shards),
        )
        process_topk = process_sinks["topk"].result()
        process_matches = process_matches and all(
            (
                np.array_equal(process.worst_ir_drop, result.worst_ir_drop),
                np.array_equal(process.average_ir_drop, result.average_ir_drop),
                np.array_equal(process.worst_node_index, result.worst_node_index),
                np.array_equal(
                    process_sinks["histogram"].result().counts, sequential_histogram.counts
                ),
                np.array_equal(
                    process_sinks["exceedance"].result().counts, exceedance.counts
                ),
                np.array_equal(
                    process_sinks["joint"].result().violating_node_counts,
                    joint.violating_node_counts,
                ),
                np.array_equal(process_topk.scenario_index, topk.scenario_index),
                np.array_equal(process_topk.worst_ir_drop, topk.worst_ir_drop),
                # The sketch merge is aligned counter addition: bitwise
                # identical at every shard count, unlike the reservoir.
                np.array_equal(
                    process_sinks["sketch"].result().values, sketch_estimate.values
                ),
            )
        )
        assert process_matches, f"process-sharded sweep diverged at {shards} shards"
        process_elapsed = process.analysis_time
        process_factorizations = process_engine.cache_info().factorizations
        process_reservoir = process_sinks["reservoir"].result()
    process_shards = PROCESS_SHARD_COUNTS[-1]
    process_speedup = result.analysis_time / process_elapsed if process_elapsed > 0 else 0.0

    # --- Hybrid executor: process shards each running the threaded chunk
    # pipeline, the grid shipped once through a shared-memory payload.
    # Bitwise identity to the sequential sweep is asserted at every
    # (shard_workers, threads_per_shard) combination and every scale; the
    # last combination is timed.  check_results.py gates hybrid_speedup >=
    # max(parallel_speedup, process_speedup) on >= 4-core full-scale
    # runners, and payload_bytes_shared > 0 everywhere the shared-memory
    # path is available.
    hybrid_matches = True
    hybrid_elapsed = 0.0
    hybrid_stats: dict = {}
    for shard_workers, threads_per_shard in HYBRID_CONFIGS:
        hybrid_engine = BatchedAnalysisEngine()
        hybrid_sinks = mergeable_sinks(nominal.worst_ir_drop, reservoir_capacity=4096)
        hybrid_executor = HybridExecutor(
            shard_workers=shard_workers, threads_per_shard=threads_per_shard
        )
        hybrid = hybrid_engine.analyze_mega_sweep(
            grid,
            load_matrix,
            pad_matrix,
            chunk_size=CHUNK_SIZE,
            sinks=tuple(hybrid_sinks.values()),
            executor=hybrid_executor,
        )
        hybrid_topk = hybrid_sinks["topk"].result()
        hybrid_matches = hybrid_matches and all(
            (
                np.array_equal(hybrid.worst_ir_drop, result.worst_ir_drop),
                np.array_equal(hybrid.average_ir_drop, result.average_ir_drop),
                np.array_equal(hybrid.worst_node_index, result.worst_node_index),
                np.array_equal(
                    hybrid_sinks["histogram"].result().counts, sequential_histogram.counts
                ),
                np.array_equal(
                    hybrid_sinks["exceedance"].result().counts, exceedance.counts
                ),
                np.array_equal(
                    hybrid_sinks["joint"].result().violating_node_counts,
                    joint.violating_node_counts,
                ),
                np.array_equal(hybrid_topk.scenario_index, topk.scenario_index),
                np.array_equal(hybrid_topk.worst_ir_drop, topk.worst_ir_drop),
                np.array_equal(
                    hybrid_sinks["sketch"].result().values, sketch_estimate.values
                ),
            )
        )
        assert hybrid_matches, (
            f"hybrid sweep diverged at {shard_workers} shards x "
            f"{threads_per_shard} threads"
        )
        hybrid_elapsed = hybrid.analysis_time
        hybrid_stats = dict(hybrid_executor.last_stats)
    hybrid_shard_workers, hybrid_threads = HYBRID_CONFIGS[-1]
    hybrid_speedup = result.analysis_time / hybrid_elapsed if hybrid_elapsed > 0 else 0.0

    # --- Remote fleet executor: the same sweep through the coordinator /
    # worker protocol (embedded localhost fleet), at 1 / 2 / non-divisor
    # shard counts (oversubscribe=1 pins shards == workers).  The merged
    # reductions and every exact mergeable sink must again be
    # bitwise-identical to the sequential sweep, and the sketch must merge
    # bitwise at every count.  The largest fleet is timed for the recorded
    # speedup (gated >= 1.5x by check_results.py on multi-core full-scale
    # runners; embedded mode pays worker spawn per sweep).
    remote_matches = True
    remote_elapsed = 0.0
    remote_factorizations = 0
    for workers in REMOTE_WORKER_COUNTS:
        remote_engine = BatchedAnalysisEngine()
        remote_sinks = mergeable_sinks(nominal.worst_ir_drop, reservoir_capacity=4096)
        remote = remote_engine.analyze_mega_sweep(
            grid,
            load_matrix,
            pad_matrix,
            chunk_size=CHUNK_SIZE,
            sinks=tuple(remote_sinks.values()),
            executor=RemoteExecutor(workers=workers, oversubscribe=1),
        )
        remote_topk = remote_sinks["topk"].result()
        remote_matches = remote_matches and all(
            (
                np.array_equal(remote.worst_ir_drop, result.worst_ir_drop),
                np.array_equal(remote.average_ir_drop, result.average_ir_drop),
                np.array_equal(remote.worst_node_index, result.worst_node_index),
                np.array_equal(
                    remote_sinks["histogram"].result().counts, sequential_histogram.counts
                ),
                np.array_equal(
                    remote_sinks["exceedance"].result().counts, exceedance.counts
                ),
                np.array_equal(
                    remote_sinks["joint"].result().violating_node_counts,
                    joint.violating_node_counts,
                ),
                np.array_equal(remote_topk.scenario_index, topk.scenario_index),
                np.array_equal(remote_topk.worst_ir_drop, topk.worst_ir_drop),
                np.array_equal(
                    remote_sinks["sketch"].result().values, sketch_estimate.values
                ),
            )
        )
        assert remote_matches, f"remote sweep diverged at {workers} workers"
        remote_elapsed = remote.analysis_time
        remote_factorizations = remote_engine.cache_info().factorizations
    remote_workers = REMOTE_WORKER_COUNTS[-1]
    remote_speedup = result.analysis_time / remote_elapsed if remote_elapsed > 0 else 0.0

    record = {
        "benchmark": BENCHMARK,
        "scale": scale,
        "smoke": not full_scale(),
        "num_nodes": result.compiled.num_nodes,
        "num_load_scenarios": num_loads,
        "num_pad_scenarios": num_pads,
        "num_scenarios": result.num_scenarios,
        "chunk_size": CHUNK_SIZE,
        "factorizations": sweep_engine.cache_info().factorizations,
        "elapsed_seconds": result.analysis_time,
        "scenarios_per_second": result.scenarios_per_second,
        "cpu_count": os.cpu_count() or 1,
        "parallel_workers": PARALLEL_WORKERS,
        "parallel_elapsed_seconds": parallel.analysis_time,
        "parallel_scenarios_per_second": parallel.scenarios_per_second,
        "parallel_speedup": parallel_speedup,
        "parallel_factorizations": parallel_engine.cache_info().factorizations,
        "parallel_matches": parallel_matches,
        "process_shard_counts": list(PROCESS_SHARD_COUNTS),
        "process_shards": process_shards,
        "process_elapsed_seconds": process_elapsed,
        "process_scenarios_per_second": (
            result.num_scenarios / process_elapsed if process_elapsed > 0 else 0.0
        ),
        "process_speedup": process_speedup,
        "process_matches": process_matches,
        "process_factorizations": process_factorizations,
        "process_reservoir_quantiles": dict(
            zip(map(str, QUANTILES), process_reservoir.values.tolist())
        ),
        "hybrid_configs": [list(config) for config in HYBRID_CONFIGS],
        "hybrid_shard_workers": hybrid_shard_workers,
        "hybrid_threads_per_shard": hybrid_threads,
        "hybrid_elapsed_seconds": hybrid_elapsed,
        "hybrid_scenarios_per_second": (
            result.num_scenarios / hybrid_elapsed if hybrid_elapsed > 0 else 0.0
        ),
        "hybrid_speedup": hybrid_speedup,
        "hybrid_matches": hybrid_matches,
        "hybrid_payload_bytes_shared": hybrid_stats.get("payload_bytes_shared", 0),
        "hybrid_rebalances": hybrid_stats.get("rebalances", 0),
        "hybrid_tasks": hybrid_stats.get("tasks", 0),
        "remote_worker_counts": list(REMOTE_WORKER_COUNTS),
        "remote_workers": remote_workers,
        "remote_elapsed_seconds": remote_elapsed,
        "remote_scenarios_per_second": (
            result.num_scenarios / remote_elapsed if remote_elapsed > 0 else 0.0
        ),
        "remote_speedup": remote_speedup,
        "remote_matches": remote_matches,
        "remote_factorizations": remote_factorizations,
        "sketch_relative_error_bound": SKETCH_RELATIVE_ERROR,
        "sketch_rel_error": sketch_rel_error,
        "sketch_reference_rel_error": ref_sketch_error,
        "sketch_quantiles": dict(
            zip(map(str, QUANTILES), sketch_estimate.values.tolist())
        ),
        "p2_fold_seconds": p2_fold_seconds,
        "p2_fold_fraction": p2_fold_fraction,
        "p2_fold_scenarios_per_second": (
            result.num_scenarios / p2_fold_seconds if p2_fold_seconds > 0 else 0.0
        ),
        "exact_sinks_match": exact_sinks_match,
        "reference_scenarios": ref_scenarios,
        "dense_voltage_bytes_avoided": dense_voltage_bytes,
        "chunk_working_set_bytes": chunk_bytes,
        "nominal_worst_ir_drop": nominal.worst_ir_drop,
        "sweep_worst_ir_drop": float(result.worst_ir_drop.max()),
        "p2_quantiles": dict(zip(map(str, QUANTILES), p2_estimate.values.tolist())),
        "reservoir_quantiles": dict(
            zip(map(str, QUANTILES), reservoir_estimate.values.tolist())
        ),
        "max_node_exceedance_rate": float(exceedance.rates.max()),
        "scenarios_with_violation": joint.scenarios_with_violation,
        "any_exceedance_rate": joint.any_exceedance_rate,
        "top_scenario": int(topk.scenario_index[0]),
        "top_worst_ir_drop": float(topk.worst_ir_drop[0]),
    }
    print()
    print(
        format_key_values(
            {
                "benchmark": BENCHMARK,
                "grid nodes": result.compiled.num_nodes,
                "scenarios": f"{num_loads} x {num_pads} = {result.num_scenarios}",
                "chunk size": CHUNK_SIZE,
                "elapsed (s)": round(result.analysis_time, 3),
                "scenarios / s": round(result.scenarios_per_second),
                f"parallel x{PARALLEL_WORKERS} (s)": round(parallel.analysis_time, 3),
                "parallel speedup": round(parallel_speedup, 2),
                "parallel matches": parallel_matches,
                f"process x{process_shards} (s)": round(process_elapsed, 3),
                "process speedup": round(process_speedup, 2),
                "process matches": process_matches,
                f"hybrid {hybrid_shard_workers}x{hybrid_threads} (s)": round(
                    hybrid_elapsed, 3
                ),
                "hybrid speedup": round(hybrid_speedup, 2),
                "hybrid matches": hybrid_matches,
                "hybrid shared MB": round(
                    hybrid_stats.get("payload_bytes_shared", 0) / 1e6, 3
                ),
                f"remote x{remote_workers} (s)": round(remote_elapsed, 3),
                "remote speedup": round(remote_speedup, 2),
                "remote matches": remote_matches,
                "sketch rel error": round(sketch_rel_error, 5),
                "p2 fold (s)": round(p2_fold_seconds, 3),
                "p2 fold fraction": round(p2_fold_fraction, 4),
                "dense GB avoided": round(dense_voltage_bytes / 1e9, 3),
                "chunk MB working set": round(chunk_bytes / 1e6, 3),
                "P99 worst drop (mV)": round(p2_estimate.values[-1] * 1000.0, 3),
                "exact sinks match": exact_sinks_match,
            },
            title=f"streamed mega-sweep with sinks ({BENCHMARK})",
        )
    )
    with open(results_dir / "bench_mega_sweep_sinks.json", "w") as handle:
        json.dump(record, handle, indent=2)
