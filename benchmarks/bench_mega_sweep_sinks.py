"""Mega-sweep benchmark: 1e5+ pad x load scenarios through streamed sinks.

The paper's value proposition is evaluating huge numbers of PDN scenarios
cheaply.  This bench drives the combined pad-voltage x load-perturbation
cross product (:meth:`BatchedAnalysisEngine.analyze_mega_sweep`) at
``>= 1e5`` scenarios on ``ibmpg1``, with the full sink stack attached —
P2 / reservoir quantiles, per-node histograms, exceedance counts and a
top-k shortlist — all in chunk-bounded memory: neither the dense
``(num_nodes, k)`` voltage matrix nor the ``(k, num_nodes)`` scenario
matrix is ever allocated (the cross product is generated per chunk).

Before the timed run, the exact-reduction sinks (histogram, exceedance,
top-k) and the streamed worst/mean reductions are verified **bitwise**
against a dense single-shot reference on a cross-product subset small
enough to materialise, and the reservoir quantile sink (sized to hold the
whole subset) is verified bitwise against ``numpy.quantile``.

After the timed sequential sweep, the same mega-sweep is re-run with
``workers >= 2`` solver threads: the parallel chunk pipeline must produce
**bitwise-identical** reductions and sink results (asserted), and the
sequential-vs-parallel speedup is recorded.  The ``>= 1.5x`` throughput bar
is enforced by ``check_results.py`` only on multi-core full-scale runners
(the record carries ``cpu_count``).

A JSON throughput record is written to ``benchmarks/results/`` for the CI
artifact upload and the regression checker (``check_results.py``).

Environment variables:
    REPRO_BENCH_SCALE: Global grid scale; scales the scenario counts down
        too (tiny-grid CI smoke gate).  Full-scale acceptance asserts
        >= 1e5 scenarios.
"""

from __future__ import annotations

import json
import os

import numpy as np
from conftest import bench_scale, full_scale

from repro.analysis import (
    BatchedAnalysisEngine,
    ExceedanceCountSink,
    NodeHistogramSink,
    P2QuantileSink,
    ReservoirQuantileSink,
    TopKScenarioSink,
)
from repro.core import format_key_values
from repro.grid import SyntheticIBMSuite, mega_sweep_matrices

BENCHMARK = "ibmpg1"
GAMMA = 0.2
SEED = 2020
FULL_NUM_LOADS = 400
FULL_NUM_PADS = 256
CHUNK_SIZE = 512
QUANTILES = (0.5, 0.9, 0.99)
TOP_K = 10
NUM_BINS = 32
REFERENCE_SCENARIO_BUDGET = 2048
MIN_FULL_SCALE_SCENARIOS = 100_000
PARALLEL_WORKERS = max(2, min(4, os.cpu_count() or 1))


def scenario_counts(scale: float) -> tuple[int, int]:
    """Load / pad row counts, scaled with the grid for the CI smoke run."""
    return max(6, round(FULL_NUM_LOADS * scale)), max(4, round(FULL_NUM_PADS * scale))


def build_sinks(nominal_worst: float, reservoir_capacity: int) -> dict:
    """One fresh instance of every sink the bench exercises."""
    return {
        "p2": P2QuantileSink(QUANTILES),
        "reservoir": ReservoirQuantileSink(reservoir_capacity, QUANTILES, seed=SEED),
        "histogram": NodeHistogramSink.uniform(0.0, max(2.0 * nominal_worst, 1e-6), NUM_BINS),
        "exceedance": ExceedanceCountSink(nominal_worst),
        "topk": TopKScenarioSink(TOP_K),
    }


def dense_reference(engine, grid, load_rows, pad_matrix, edges, threshold):
    """Single-shot dense solve of a small cross product + numpy reductions."""
    num_pads = pad_matrix.shape[0]
    dense = engine.analyze_pad_batch(
        grid,
        np.tile(pad_matrix, (load_rows.shape[0], 1)),
        load_matrix=np.repeat(load_rows, num_pads, axis=0),
    )
    drops = dense.compiled.vdd - dense.voltages
    counts = np.empty((drops.shape[0], len(edges) - 1), dtype=np.int64)
    for node in range(drops.shape[0]):
        counts[node] = np.histogram(drops[node], bins=edges)[0]
    # Per-scenario reductions over contiguous rows, matching the engine's
    # fixed floating-point summation order.
    rows = np.ascontiguousarray(drops.T)
    worst = rows.max(axis=1)
    order = np.lexsort((np.arange(worst.size), -worst))[:TOP_K]
    return {
        "worst": worst,
        "average": rows.mean(axis=1),
        "histogram_counts": counts,
        "underflow": (drops < edges[0]).sum(axis=1),
        "overflow": (drops > edges[-1]).sum(axis=1),
        "exceedance": (drops > threshold).sum(axis=1),
        "topk_index": order,
        "topk_value": worst[order],
        "topk_node": rows.argmax(axis=1)[order],
        "quantiles": np.quantile(worst, QUANTILES),
    }


def test_mega_sweep_sinks(benchmark, results_dir):
    """>= 1e5 streamed scenarios; exact sinks bitwise-equal to dense."""
    scale = bench_scale()
    suite = SyntheticIBMSuite(scale=scale)
    bench = suite.load(BENCHMARK)
    grid = bench.build_uniform_grid(5.0)
    num_loads, num_pads = scenario_counts(scale)
    load_matrix, pad_matrix = mega_sweep_matrices(
        grid, bench.floorplan, GAMMA, num_loads, num_pads, seed=SEED
    )

    engine = BatchedAnalysisEngine()
    nominal = engine.analyze(grid)

    # --- Exactness gate: streamed sinks vs a dense single-shot reference
    # on a materialisable cross-product subset (loads-outer ordering).
    ref_loads = max(1, min(num_loads, REFERENCE_SCENARIO_BUDGET // num_pads))
    ref_scenarios = ref_loads * num_pads
    ref_sinks = build_sinks(nominal.worst_ir_drop, reservoir_capacity=ref_scenarios)
    streamed_ref = engine.analyze_mega_sweep(
        grid,
        load_matrix[:ref_loads],
        pad_matrix,
        chunk_size=max(1, ref_scenarios // 7),  # deliberately not a divisor
        sinks=tuple(ref_sinks.values()),
    )
    edges = ref_sinks["histogram"].edges
    reference = dense_reference(
        engine, grid, load_matrix[:ref_loads], pad_matrix, edges, nominal.worst_ir_drop
    )

    assert np.array_equal(streamed_ref.worst_ir_drop, reference["worst"])
    assert np.array_equal(streamed_ref.average_ir_drop, reference["average"])
    histogram = ref_sinks["histogram"].result()
    assert np.array_equal(histogram.counts, reference["histogram_counts"])
    assert np.array_equal(histogram.underflow, reference["underflow"])
    assert np.array_equal(histogram.overflow, reference["overflow"])
    exceedance = ref_sinks["exceedance"].result()
    assert np.array_equal(exceedance.counts, reference["exceedance"])
    topk = ref_sinks["topk"].result()
    assert np.array_equal(topk.scenario_index, reference["topk_index"])
    assert np.array_equal(topk.worst_ir_drop, reference["topk_value"])
    assert np.array_equal(topk.worst_node_index, reference["topk_node"])
    # Reservoir sized to the whole subset == exact empirical quantiles.
    reservoir = ref_sinks["reservoir"].result()
    assert reservoir.exact
    assert np.array_equal(reservoir.values, reference["quantiles"])
    exact_sinks_match = True

    # --- Timed full mega-sweep, chunk-bounded memory, one factorization.
    sweep_engine = BatchedAnalysisEngine()
    sinks = build_sinks(nominal.worst_ir_drop, reservoir_capacity=4096)
    result = benchmark.pedantic(
        # workers=1 pinned: the baseline must stay sequential even when
        # REPRO_TEST_WORKERS is exported, or the speedup record lies.
        lambda: sweep_engine.analyze_mega_sweep(
            grid,
            load_matrix,
            pad_matrix,
            chunk_size=CHUNK_SIZE,
            sinks=tuple(sinks.values()),
            workers=1,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.num_scenarios == num_loads * num_pads
    assert sweep_engine.cache_info().factorizations == 1
    if full_scale():
        assert result.num_scenarios >= MIN_FULL_SCALE_SCENARIOS

    p2_estimate = sinks["p2"].result()
    reservoir_estimate = sinks["reservoir"].result()
    exceedance = sinks["exceedance"].result()
    topk = sinks["topk"].result()
    dense_voltage_bytes = 8 * result.compiled.num_nodes * result.num_scenarios
    chunk_bytes = 8 * result.compiled.num_nodes * CHUNK_SIZE

    # --- Parallel chunk pipeline: same sweep on a thread pool.  Ordered
    # sink folding makes every reduction and sink result bitwise-identical;
    # the speedup is recorded and gated (multi-core runners only) by
    # check_results.py.
    parallel_engine = BatchedAnalysisEngine()
    parallel_sinks = build_sinks(nominal.worst_ir_drop, reservoir_capacity=4096)
    parallel = parallel_engine.analyze_mega_sweep(
        grid,
        load_matrix,
        pad_matrix,
        chunk_size=CHUNK_SIZE,
        sinks=tuple(parallel_sinks.values()),
        workers=PARALLEL_WORKERS,
    )
    parallel_histogram = parallel_sinks["histogram"].result()
    sequential_histogram = sinks["histogram"].result()
    parallel_topk = parallel_sinks["topk"].result()
    parallel_matches = all(
        (
            np.array_equal(parallel.worst_ir_drop, result.worst_ir_drop),
            np.array_equal(parallel.average_ir_drop, result.average_ir_drop),
            np.array_equal(parallel.worst_node_index, result.worst_node_index),
            np.array_equal(parallel_histogram.counts, sequential_histogram.counts),
            np.array_equal(
                parallel_sinks["exceedance"].result().counts, exceedance.counts
            ),
            np.array_equal(parallel_topk.scenario_index, topk.scenario_index),
            np.array_equal(parallel_topk.worst_ir_drop, topk.worst_ir_drop),
            np.array_equal(parallel_sinks["p2"].result().values, p2_estimate.values),
            np.array_equal(
                parallel_sinks["reservoir"].result().values, reservoir_estimate.values
            ),
        )
    )
    assert parallel_matches
    assert parallel_engine.cache_info().factorizations == 1
    parallel_speedup = (
        result.analysis_time / parallel.analysis_time if parallel.analysis_time > 0 else 0.0
    )

    record = {
        "benchmark": BENCHMARK,
        "scale": scale,
        "num_nodes": result.compiled.num_nodes,
        "num_load_scenarios": num_loads,
        "num_pad_scenarios": num_pads,
        "num_scenarios": result.num_scenarios,
        "chunk_size": CHUNK_SIZE,
        "factorizations": sweep_engine.cache_info().factorizations,
        "elapsed_seconds": result.analysis_time,
        "scenarios_per_second": result.scenarios_per_second,
        "cpu_count": os.cpu_count() or 1,
        "parallel_workers": PARALLEL_WORKERS,
        "parallel_elapsed_seconds": parallel.analysis_time,
        "parallel_scenarios_per_second": parallel.scenarios_per_second,
        "parallel_speedup": parallel_speedup,
        "parallel_factorizations": parallel_engine.cache_info().factorizations,
        "parallel_matches": parallel_matches,
        "exact_sinks_match": exact_sinks_match,
        "reference_scenarios": ref_scenarios,
        "dense_voltage_bytes_avoided": dense_voltage_bytes,
        "chunk_working_set_bytes": chunk_bytes,
        "nominal_worst_ir_drop": nominal.worst_ir_drop,
        "sweep_worst_ir_drop": float(result.worst_ir_drop.max()),
        "p2_quantiles": dict(zip(map(str, QUANTILES), p2_estimate.values.tolist())),
        "reservoir_quantiles": dict(
            zip(map(str, QUANTILES), reservoir_estimate.values.tolist())
        ),
        "max_node_exceedance_rate": float(exceedance.rates.max()),
        "top_scenario": int(topk.scenario_index[0]),
        "top_worst_ir_drop": float(topk.worst_ir_drop[0]),
    }
    print()
    print(
        format_key_values(
            {
                "benchmark": BENCHMARK,
                "grid nodes": result.compiled.num_nodes,
                "scenarios": f"{num_loads} x {num_pads} = {result.num_scenarios}",
                "chunk size": CHUNK_SIZE,
                "elapsed (s)": round(result.analysis_time, 3),
                "scenarios / s": round(result.scenarios_per_second),
                f"parallel x{PARALLEL_WORKERS} (s)": round(parallel.analysis_time, 3),
                "parallel speedup": round(parallel_speedup, 2),
                "parallel matches": parallel_matches,
                "dense GB avoided": round(dense_voltage_bytes / 1e9, 3),
                "chunk MB working set": round(chunk_bytes / 1e6, 3),
                "P99 worst drop (mV)": round(p2_estimate.values[-1] * 1000.0, 3),
                "exact sinks match": exact_sinks_match,
            },
            title=f"streamed mega-sweep with sinks ({BENCHMARK})",
        )
    )
    with open(results_dir / "bench_mega_sweep_sinks.json", "w") as handle:
        json.dump(record, handle, indent=2)
