"""Table I / Fig. 4(b): r² score of the input features.

The paper selects its input features by comparing the r² score of each
candidate feature (X coordinate, Y coordinate, switching current Id) and of
the combined feature set against the interconnect width, on the ibmpg1
benchmark.  Table I reports the aggregate scores (0.34 / 0.39 / 0.61 / 0.89)
and Fig. 4(b) shows the per-interconnect variation for 1000 interconnects.

This bench retrains one small regressor per feature subset on the synthetic
ibmpg1 training set, prints the Table I row, writes the Fig. 4(b) series and
times the whole feature study.
"""

from __future__ import annotations

from repro.core import feature_r2_study, format_table, per_interconnect_r2_series
from repro.io import write_csv, write_json
from repro.nn import RegressorConfig, TrainingConfig

_STUDY_CONFIG = RegressorConfig(
    hidden_layers=3,
    hidden_width=24,
    training=TrainingConfig(epochs=40, batch_size=128, early_stopping_patience=0, seed=0),
    seed=0,
)


def test_table1_feature_r2_scores(benchmark, benchmark_cache, results_dir):
    """Regenerate Table I: r² of X, Y, Id and the combined features (ibmpg1)."""
    prepared = benchmark_cache.get("ibmpg1")
    dataset = prepared.framework.trained.benchmark_dataset.training

    study = benchmark(feature_r2_study, dataset, _STUDY_CONFIG, 0.25, 0)

    row = {name: round(score, 3) for name, score in study.scores.items()}
    print()
    print(
        format_table(
            [row],
            columns=["x", "y", "switching_current", "combined"],
            title="Table I: r2 score of input features vs. interconnect width (ibmpg1)",
        )
    )
    print("paper reports: X=0.34  Y=0.39  Id=0.61  combined=0.89")
    write_json(study.scores, results_dir / "table1_feature_r2.json")

    # The paper's qualitative claim: the combined features dominate, and the
    # switching current is the strongest single feature.
    assert study.best_feature == "combined"
    assert study.scores["combined"] > max(
        study.scores["x"], study.scores["y"], study.scores["switching_current"]
    )


def test_fig4b_per_interconnect_r2_series(benchmark, benchmark_cache, results_dir):
    """Regenerate Fig. 4(b): per-interconnect r² variation (1000 interconnects)."""
    prepared = benchmark_cache.get("ibmpg1")
    dataset = prepared.framework.trained.benchmark_dataset.training

    study = benchmark.pedantic(
        per_interconnect_r2_series,
        args=(dataset,),
        kwargs={"config": _STUDY_CONFIG, "num_interconnects": 392, "window": 50},
        rounds=1,
        iterations=1,
    )

    rows = []
    for index in range(len(next(iter(study.per_interconnect.values())))):
        rows.append(
            {
                "interconnect": index,
                **{name: float(series[index]) for name, series in study.per_interconnect.items()},
            }
        )
    write_csv(rows, results_dir / "fig4b_per_interconnect_r2.csv")

    means = {name: float(series.mean()) for name, series in study.per_interconnect.items()}
    print()
    print(
        format_table(
            [means],
            columns=["x", "y", "switching_current", "combined"],
            title="Fig. 4(b): mean windowed r2 over interconnects (ibmpg1)",
        )
    )
    assert means["combined"] >= max(means["x"], means["y"]) - 1e-9
