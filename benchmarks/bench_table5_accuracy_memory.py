"""Table V: r² score, MSE and peak memory of PowerPlanningDL.

Table V reports, for every benchmark, the number of interconnects, the r²
score and MSE of the width prediction, and the peak memory of the framework
measured with mprof (66 MiB for ibmpg1 up to ~1 GiB for ibmpgnew1).

This bench evaluates the trained model on each benchmark's gamma = 10 %
perturbed test set (the paper's test construction), measures the peak Python
heap of the prediction flow with the tracemalloc-based profiler, prints the
table and times the evaluation of ibmpg2.
"""

from __future__ import annotations

from conftest import suite_names

from repro.core import PeakMemoryProfiler, format_table
from repro.io import write_csv


def _table5_row(prepared):
    framework = prepared.framework
    spec = framework.default_perturbation(gamma=0.10)
    _, test_dataset, _ = framework.predict_for_perturbation(prepared.benchmark, spec)
    metrics = framework.evaluate(test_dataset)

    profiler = PeakMemoryProfiler(sample_interval=0.01)
    profile = profiler.profile(
        lambda: framework.predict_design(prepared.benchmark.floorplan, prepared.benchmark.topology),
        label=prepared.name,
    )
    return {
        "benchmark": prepared.name,
        "interconnects": metrics.num_interconnects,
        "r2_score": round(metrics.r2, 3),
        "mse": round(metrics.mse, 4),
        "peak_memory_MiB": round(profile.peak_mib, 1),
    }


def test_table5_accuracy_and_peak_memory(benchmark, benchmark_cache, results_dir):
    """Regenerate Table V over the suite; time the ibmpg2 evaluation."""
    rows = [_table5_row(benchmark_cache.get(name)) for name in suite_names()]

    prepared2 = benchmark_cache.get("ibmpg2")
    training = prepared2.framework.trained.benchmark_dataset.training
    benchmark(prepared2.framework.evaluate, training)

    print()
    print(
        format_table(
            rows,
            title="Table V: r2 score, MSE and peak memory of PowerPlanningDL",
        )
    )
    print(
        "paper reports r2 0.932-0.945, MSE 0.020-0.023 (normalised), peak memory 66-1025 MiB "
        "(process RSS via mprof; this repo reports Python-heap peaks via tracemalloc)"
    )
    write_csv(rows, results_dir / "table5_accuracy_memory.csv")

    # Paper shape claims: high r2 on every benchmark, and memory grows with
    # benchmark size (ibmpg1 smallest footprint).
    assert all(row["r2_score"] > 0.8 for row in rows)
    memory = {row["benchmark"]: row["peak_memory_MiB"] for row in rows}
    if "ibmpg1" in memory and len(memory) > 1:
        assert memory["ibmpg1"] <= min(memory.values()) + 1e-9
