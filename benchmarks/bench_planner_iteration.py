"""Planner-iteration micro-benchmark: rebuild loop vs compiled fast path.

Each iteration of the conventional analyse-and-resize flow used to rebuild
the :class:`PowerGridNetwork` object graph (per-element dict inserts) and
re-derive a :class:`CompiledGrid` from scratch.  The rebuild-free loop
builds the compiled arrays once (``GridBuilder.build_compiled``) and then
only rewrites the stripe conductances per resize iteration
(``GridBuilder.resize_compiled``), reusing the frozen topology, index maps
and COO→CSR sparsity pattern.

This bench runs both planner paths on the largest shipped benchmark grid,
verifies bit-identical convergence (iterations, final widths, worst IR
drop), times the per-iteration (build + compile) step of each path and
emits a JSON speedup record mirroring ``bench_engine_batched_solve.py``.
The acceptance bar is a ≥ 3x per-iteration construction speedup at full
grid scale.

On top of construction, the bench times the *solve* side of one
analyse–resize iteration through the solver-policy layer: the resized
grid served by a low-rank incremental update of the base factorization
(Sherman–Morrison–Woodbury / preconditioned CG) versus a fresh
factorization.  Voltages must agree to 1e-9 at any scale; at full scale
the incremental path must be ≥ 3x faster.  Reduced-scale records carry
``"smoke": true`` so ``check_results.py`` skips the performance bars.

A second section (``test_planner_search_batched``) benchmarks the
batched candidate search against the one-move-per-iteration loop:
solves per committed move, wall-clock per iteration and final worst
drop for the baseline, the exact search and the NN-ranker-pruned
search, with every committed candidate verified to 1e-9 against a
fresh-factorization oracle.  Its record lands in
``bench_planner_search.json``.

Environment variables:
    REPRO_BENCH_PLANNER_GRID: Benchmark to plan (default: the largest grid).
    REPRO_BENCH_SCALE: Global grid scale (tiny-grid CI smoke gate).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
from conftest import bench_scale, full_scale

from repro.analysis import BatchedAnalysisEngine
from repro.core import format_key_values
from repro.design import CandidateRanker, ConventionalPowerPlanner, SearchConfig
from repro.grid import GridBuilder, SyntheticIBMSuite

MIN_SPEEDUP = 3.0
VOLTAGE_TOLERANCE = 1e-9
REPEATS = 3
SEARCH_ITERATIONS = 10
MAX_RANKER_LOSS = 0.01


def target_benchmark_name(suite: SyntheticIBMSuite) -> str:
    """Benchmark to plan: REPRO_BENCH_PLANNER_GRID or the largest grid."""
    override = os.environ.get("REPRO_BENCH_PLANNER_GRID", "").strip()
    if override:
        return override
    return max(suite.names(), key=lambda name: suite.config(name).approx_nodes)


def _iteration_history(plan) -> list[dict]:
    return [
        {
            "index": iteration.index,
            "worst_ir_drop": iteration.worst_ir_drop,
            "em_violations": iteration.em_violations,
            "lines_resized": iteration.lines_resized,
            "build_time": iteration.build_time,
            "analysis_time": iteration.analysis_time,
        }
        for iteration in plan.iterations
    ]


def test_planner_iteration_speedup(benchmark, results_dir):
    """Legacy rebuild vs compiled construction, identical convergence."""
    suite = SyntheticIBMSuite(scale=bench_scale())
    name = target_benchmark_name(suite)
    bench = suite.load(name)
    technology = bench.technology
    floorplan, topology = bench.floorplan, bench.topology

    legacy_planner = ConventionalPowerPlanner(technology, use_compiled_loop=False)
    fast_planner = ConventionalPowerPlanner(technology, use_compiled_loop=True)
    legacy_plan = legacy_planner.plan(floorplan, topology)
    fast_plan = benchmark.pedantic(
        lambda: fast_planner.plan(floorplan, topology), rounds=1, iterations=1
    )

    # Convergence must be identical between the two loops.
    assert fast_plan.num_iterations == legacy_plan.num_iterations
    assert fast_plan.converged == legacy_plan.converged
    assert np.array_equal(fast_plan.widths, legacy_plan.widths)
    assert abs(
        fast_plan.ir_result.worst_ir_drop - legacy_plan.ir_result.worst_ir_drop
    ) <= 1e-9
    for legacy_it, fast_it in zip(legacy_plan.iterations, fast_plan.iterations):
        assert fast_it.lines_resized == legacy_it.lines_resized
        assert abs(fast_it.worst_ir_drop - legacy_it.worst_ir_drop) <= 1e-9

    # Per-iteration construction cost: what one resize round pays before the
    # solve.  Legacy: object-graph build + compile + matrix assembly.
    # Compiled: conductance rewrite + pattern-based matrix refresh.
    builder = GridBuilder(technology)
    initial_widths = legacy_planner.sizer.size(floorplan, topology)
    resized_widths = legacy_planner.rules.legalize_widths(initial_widths * 1.25)

    legacy_times = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        network = builder.build(floorplan, topology, resized_widths)
        network.compile().reduced_matrix
        legacy_times.append(time.perf_counter() - start)

    start = time.perf_counter()
    base = builder.build_compiled(floorplan, topology, initial_widths)
    base.reduced_matrix
    first_build_time = time.perf_counter() - start

    compiled_times = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        builder.resize_compiled(base, topology, resized_widths).reduced_matrix
        compiled_times.append(time.perf_counter() - start)

    legacy_seconds = float(np.mean(legacy_times))
    compiled_seconds = float(np.mean(compiled_times))
    speedup = legacy_seconds / compiled_seconds

    # Solve side of one analyse—resize iteration.  A planner resize
    # touches the violating subset of lines, so upsize one decile and
    # compare the resized grid served by a low-rank update of the base
    # factors against a fresh factorization of the resized matrix.
    partial_widths = np.asarray(initial_widths, dtype=float).copy()
    upsized = legacy_planner.rules.legalize_widths(partial_widths * 1.3)
    downsized = legacy_planner.rules.legalize_widths(partial_widths * 0.7)
    # Lines already at the legal maximum cannot move up; fall back to a
    # downsize so the update always has non-zero rank.
    target = upsized if np.any(upsized != partial_widths) else downsized
    movable = np.flatnonzero(target != partial_widths)
    chosen = movable[: max(1, min(movable.size, partial_widths.size // 10))]
    num_resized_lines = int(chosen.size)
    partial_widths[chosen] = target[chosen]
    resized = builder.resize_compiled(base, topology, partial_widths)
    update_rank = int(resized.update_columns(resized.update_indices)[1].size)

    fresh_engine = BatchedAnalysisEngine(incremental_updates=False)
    fresh_times = []
    for _ in range(REPEATS):
        fresh_engine.clear_cache()
        fresh_engine.analyze(base)  # prime the base factors (untimed)
        start = time.perf_counter()
        fresh_voltages = fresh_engine.solve_voltages(resized)
        fresh_times.append(time.perf_counter() - start)

    incremental_engine = BatchedAnalysisEngine()
    incremental_times = []
    for _ in range(REPEATS):
        incremental_engine.clear_cache()
        incremental_engine.analyze(base)
        start = time.perf_counter()
        incremental_voltages = incremental_engine.solve_voltages(resized)
        incremental_times.append(time.perf_counter() - start)

    cache = incremental_engine.cache_info()
    assert cache.updates == REPEATS, cache
    assert cache.update_fallbacks == 0, cache
    max_voltage_error = float(np.max(np.abs(incremental_voltages - fresh_voltages)))
    assert max_voltage_error <= VOLTAGE_TOLERANCE, (
        f"incremental update diverged from fresh factors by {max_voltage_error}"
    )
    fresh_solve_seconds = float(np.mean(fresh_times))
    incremental_solve_seconds = float(np.mean(incremental_times))
    incremental_speedup = fresh_solve_seconds / incremental_solve_seconds

    record = {
        "benchmark": name,
        "scale": bench_scale(),
        "smoke": not full_scale(),
        "grid_statistics": dict(
            zip(
                ("num_nodes", "num_resistors", "num_sources", "num_loads"),
                legacy_plan.network.statistics().as_row(),
            )
        ),
        "num_iterations": legacy_plan.num_iterations,
        "converged": legacy_plan.converged,
        "legacy_iteration_build_seconds": legacy_seconds,
        "compiled_iteration_build_seconds": compiled_seconds,
        "compiled_first_build_seconds": first_build_time,
        "iteration_build_speedup": speedup,
        "solver_backend": cache.backend,
        "incremental_update_rank": update_rank,
        "resized_lines": num_resized_lines,
        "fresh_iteration_solve_seconds": fresh_solve_seconds,
        "incremental_iteration_solve_seconds": incremental_solve_seconds,
        "refactorization_seconds_saved_per_iteration": (
            fresh_solve_seconds - incremental_solve_seconds
        ),
        "incremental_speedup": incremental_speedup,
        "incremental_max_voltage_error": max_voltage_error,
        "incremental_updates": cache.updates,
        "incremental_update_fallbacks": cache.update_fallbacks,
        "legacy_history": _iteration_history(legacy_plan),
        "compiled_history": _iteration_history(fast_plan),
        "legacy_plan_total_seconds": legacy_plan.total_time,
        "compiled_plan_total_seconds": fast_plan.total_time,
    }
    print()
    print(
        format_key_values(
            {
                "benchmark": name,
                "iterations": legacy_plan.num_iterations,
                "legacy build+compile (s)": round(legacy_seconds, 5),
                "compiled resize (s)": round(compiled_seconds, 5),
                "compiled first build (s)": round(first_build_time, 5),
                "per-iteration speedup": round(speedup, 2),
                "solver backend": cache.backend,
                "update rank": update_rank,
                "fresh factor+solve (s)": round(fresh_solve_seconds, 5),
                "incremental solve (s)": round(incremental_solve_seconds, 5),
                "incremental speedup": round(incremental_speedup, 2),
                "max voltage error": max_voltage_error,
                "plan total legacy (s)": round(legacy_plan.total_time, 4),
                "plan total compiled (s)": round(fast_plan.total_time, 4),
            },
            title=f"rebuild loop vs compiled planner iteration ({name})",
        )
    )
    with open(results_dir / "bench_planner_iteration.json", "w") as handle:
        json.dump(record, handle, indent=2)

    if full_scale():
        assert speedup >= MIN_SPEEDUP, (
            f"compiled planner iteration speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP}x bar"
        )
        assert incremental_speedup >= MIN_SPEEDUP, (
            f"incremental-update iteration speedup {incremental_speedup:.2f}x "
            f"below the {MIN_SPEEDUP}x bar"
        )


def _committed_moves(plan) -> int:
    """Moves the one-move loop actually applied (iterations that resized)."""
    return sum(1 for iteration in plan.iterations if iteration.lines_resized > 0)


def _oracle_verify(technology, floorplan, topology, moves) -> float:
    """Max voltage error of every committed candidate vs fresh factors.

    Each committed move is rebuilt from its absolute widths with
    ``build_compiled`` (bit-identical to the resize chain) and re-solved
    by a fresh-factorization engine against the move's recorded loads.
    """
    builder = GridBuilder(technology)
    oracle = BatchedAnalysisEngine(incremental_updates=False)
    worst = 0.0
    for move in moves:
        fresh = builder.build_compiled(floorplan, topology, move.widths)
        voltages = oracle.solve_voltages(fresh, move.loads)
        worst = max(worst, float(np.max(np.abs(voltages - move.voltages))))
    return worst


def test_planner_search_batched(results_dir):
    """Batched candidate search vs the one-move-per-iteration loop.

    All three modes start from a deliberately undersized grid (every
    stripe at the legal minimum) under one fixed iteration budget, so
    each pays a full analyse–resize trajectory:

    * **one-move baseline** — the conventional loop, fresh factorization
      per iteration (the paper's flow);
    * **exact search** — every candidate of every batch solved through
      the incremental-update path against the single cached base
      factorization;
    * **ranker search** — the batch pruned by the NN ranker (trained on
      the exact run's observed improvements) before any solve.

    Gates (full scale only): the exact search must reach a final worst
    drop no worse than the baseline while paying >= 3x fewer full
    factorizations per committed move, every committed candidate must
    match a fresh-factorization oracle to 1e-9, and the ranker-pruned
    search must lose <= 1% final drop vs exact.
    """
    suite = SyntheticIBMSuite(scale=bench_scale())
    name = target_benchmark_name(suite)
    bench = suite.load(name)
    technology = bench.technology
    floorplan, topology = bench.floorplan, bench.topology

    baseline_planner = ConventionalPowerPlanner(
        technology, max_iterations=SEARCH_ITERATIONS, incremental_updates=False
    )
    tiny = np.full(topology.num_lines, baseline_planner.rules.min_width)
    baseline_plan = baseline_planner.plan(floorplan, topology, initial_widths=tiny)
    baseline_cache = baseline_planner.analyzer.cache_info()
    baseline_moves = max(_committed_moves(baseline_plan), 1)
    baseline_solves_per_move = baseline_cache.factorizations / baseline_moves

    exact_planner = ConventionalPowerPlanner(
        technology, max_iterations=SEARCH_ITERATIONS, search=True
    )
    exact_plan = exact_planner.plan(floorplan, topology, initial_widths=tiny.copy())
    exact_cache = exact_planner.analyzer.cache_info()
    exact_stats = exact_plan.search
    exact_moves = max(exact_stats.moves_committed, 1)
    exact_solves_per_move = exact_cache.factorizations / exact_moves
    solve_ratio = baseline_solves_per_move / max(exact_solves_per_move, 1e-12)

    oracle_max_error = _oracle_verify(
        technology, floorplan, topology, exact_stats.committed
    )
    assert oracle_max_error <= VOLTAGE_TOLERANCE, (
        f"committed candidate diverged from the fresh-factorization oracle "
        f"by {oracle_max_error}"
    )
    assert exact_stats.candidates_generated == (
        exact_stats.candidates_pruned + exact_stats.candidates_solved
    )
    assert exact_stats.candidates_pruned == 0  # exact mode solves everything

    features, improvements = exact_stats.training_data()
    ranker = CandidateRanker()
    ranker.fit(features, improvements)
    ranker_planner = ConventionalPowerPlanner(
        technology,
        max_iterations=SEARCH_ITERATIONS,
        search=SearchConfig(ranker=ranker),
    )
    ranker_plan = ranker_planner.plan(floorplan, topology, initial_widths=tiny.copy())
    ranker_stats = ranker_plan.search
    assert ranker_stats.candidates_pruned > 0
    assert ranker_stats.candidates_generated == (
        ranker_stats.candidates_pruned + ranker_stats.candidates_solved
    )
    ranker_loss = (
        ranker_plan.ir_result.worst_ir_drop - exact_plan.ir_result.worst_ir_drop
    ) / exact_plan.ir_result.worst_ir_drop

    record = {
        "benchmark": name,
        "scale": bench_scale(),
        "smoke": not full_scale(),
        "iteration_budget": SEARCH_ITERATIONS,
        "baseline": {
            "final_worst_ir_drop": baseline_plan.ir_result.worst_ir_drop,
            "converged": baseline_plan.converged,
            "iterations": baseline_plan.num_iterations,
            "committed_moves": _committed_moves(baseline_plan),
            "factorizations": baseline_cache.factorizations,
            "solves_per_committed_move": baseline_solves_per_move,
            "seconds_per_iteration": (
                baseline_plan.total_time / baseline_plan.num_iterations
            ),
            "total_seconds": baseline_plan.total_time,
        },
        "exact_search": {
            "final_worst_ir_drop": exact_plan.ir_result.worst_ir_drop,
            "converged": exact_plan.converged,
            "iterations": exact_plan.num_iterations,
            "factorizations": exact_cache.factorizations,
            "incremental_updates": exact_cache.updates,
            "update_fallbacks": exact_cache.update_fallbacks,
            "solves_per_committed_move": exact_solves_per_move,
            "seconds_per_iteration": (
                exact_plan.total_time / exact_plan.num_iterations
            ),
            "total_seconds": exact_plan.total_time,
            "oracle_max_voltage_error": oracle_max_error,
            **exact_stats.as_record(),
        },
        "ranker_search": {
            "final_worst_ir_drop": ranker_plan.ir_result.worst_ir_drop,
            "converged": ranker_plan.converged,
            "iterations": ranker_plan.num_iterations,
            "relative_loss_vs_exact": ranker_loss,
            "seconds_per_iteration": (
                ranker_plan.total_time / ranker_plan.num_iterations
            ),
            "total_seconds": ranker_plan.total_time,
            **ranker_stats.as_record(),
        },
        "solve_ratio_vs_baseline": solve_ratio,
    }
    print()
    print(
        format_key_values(
            {
                "benchmark": name,
                "baseline final drop (V)": round(
                    baseline_plan.ir_result.worst_ir_drop, 6
                ),
                "exact search final drop (V)": round(
                    exact_plan.ir_result.worst_ir_drop, 6
                ),
                "ranker final drop (V)": round(
                    ranker_plan.ir_result.worst_ir_drop, 6
                ),
                "ranker loss vs exact": f"{ranker_loss:+.3%}",
                "baseline solves/move": round(baseline_solves_per_move, 3),
                "search solves/move": round(exact_solves_per_move, 3),
                "solve ratio": round(solve_ratio, 2),
                "candidates solved (exact)": exact_stats.candidates_solved,
                "candidates pruned (ranker)": ranker_stats.candidates_pruned,
                "oracle max voltage error": oracle_max_error,
            },
            title=f"batched planner search vs one-move loop ({name})",
        )
    )
    with open(results_dir / "bench_planner_search.json", "w") as handle:
        json.dump(record, handle, indent=2)

    if full_scale():
        assert exact_plan.ir_result.worst_ir_drop <= (
            baseline_plan.ir_result.worst_ir_drop + 1e-12
        ), "exact search finished worse than the one-move baseline"
        assert solve_ratio >= MIN_SPEEDUP, (
            f"search pays only {solve_ratio:.2f}x fewer solves per committed "
            f"move (bar: {MIN_SPEEDUP}x)"
        )
        assert ranker_loss <= MAX_RANKER_LOSS, (
            f"ranker-pruned search lost {ranker_loss:.3%} final drop vs exact "
            f"(bar: {MAX_RANKER_LOSS:.0%})"
        )
