"""Planner-iteration micro-benchmark: rebuild loop vs compiled fast path.

Each iteration of the conventional analyse-and-resize flow used to rebuild
the :class:`PowerGridNetwork` object graph (per-element dict inserts) and
re-derive a :class:`CompiledGrid` from scratch.  The rebuild-free loop
builds the compiled arrays once (``GridBuilder.build_compiled``) and then
only rewrites the stripe conductances per resize iteration
(``GridBuilder.resize_compiled``), reusing the frozen topology, index maps
and COO→CSR sparsity pattern.

This bench runs both planner paths on the largest shipped benchmark grid,
verifies bit-identical convergence (iterations, final widths, worst IR
drop), times the per-iteration (build + compile) step of each path and
emits a JSON speedup record mirroring ``bench_engine_batched_solve.py``.
The acceptance bar is a ≥ 3x per-iteration construction speedup at full
grid scale.

On top of construction, the bench times the *solve* side of one
analyse–resize iteration through the solver-policy layer: the resized
grid served by a low-rank incremental update of the base factorization
(Sherman–Morrison–Woodbury / preconditioned CG) versus a fresh
factorization.  Voltages must agree to 1e-9 at any scale; at full scale
the incremental path must be ≥ 3x faster.  Reduced-scale records carry
``"smoke": true`` so ``check_results.py`` skips the performance bars.

Environment variables:
    REPRO_BENCH_PLANNER_GRID: Benchmark to plan (default: the largest grid).
    REPRO_BENCH_SCALE: Global grid scale (tiny-grid CI smoke gate).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
from conftest import bench_scale, full_scale

from repro.analysis import BatchedAnalysisEngine
from repro.core import format_key_values
from repro.design import ConventionalPowerPlanner
from repro.grid import GridBuilder, SyntheticIBMSuite

MIN_SPEEDUP = 3.0
VOLTAGE_TOLERANCE = 1e-9
REPEATS = 3


def target_benchmark_name(suite: SyntheticIBMSuite) -> str:
    """Benchmark to plan: REPRO_BENCH_PLANNER_GRID or the largest grid."""
    override = os.environ.get("REPRO_BENCH_PLANNER_GRID", "").strip()
    if override:
        return override
    return max(suite.names(), key=lambda name: suite.config(name).approx_nodes)


def _iteration_history(plan) -> list[dict]:
    return [
        {
            "index": iteration.index,
            "worst_ir_drop": iteration.worst_ir_drop,
            "em_violations": iteration.em_violations,
            "lines_resized": iteration.lines_resized,
            "build_time": iteration.build_time,
            "analysis_time": iteration.analysis_time,
        }
        for iteration in plan.iterations
    ]


def test_planner_iteration_speedup(benchmark, results_dir):
    """Legacy rebuild vs compiled construction, identical convergence."""
    suite = SyntheticIBMSuite(scale=bench_scale())
    name = target_benchmark_name(suite)
    bench = suite.load(name)
    technology = bench.technology
    floorplan, topology = bench.floorplan, bench.topology

    legacy_planner = ConventionalPowerPlanner(technology, use_compiled_loop=False)
    fast_planner = ConventionalPowerPlanner(technology, use_compiled_loop=True)
    legacy_plan = legacy_planner.plan(floorplan, topology)
    fast_plan = benchmark.pedantic(
        lambda: fast_planner.plan(floorplan, topology), rounds=1, iterations=1
    )

    # Convergence must be identical between the two loops.
    assert fast_plan.num_iterations == legacy_plan.num_iterations
    assert fast_plan.converged == legacy_plan.converged
    assert np.array_equal(fast_plan.widths, legacy_plan.widths)
    assert abs(
        fast_plan.ir_result.worst_ir_drop - legacy_plan.ir_result.worst_ir_drop
    ) <= 1e-9
    for legacy_it, fast_it in zip(legacy_plan.iterations, fast_plan.iterations):
        assert fast_it.lines_resized == legacy_it.lines_resized
        assert abs(fast_it.worst_ir_drop - legacy_it.worst_ir_drop) <= 1e-9

    # Per-iteration construction cost: what one resize round pays before the
    # solve.  Legacy: object-graph build + compile + matrix assembly.
    # Compiled: conductance rewrite + pattern-based matrix refresh.
    builder = GridBuilder(technology)
    initial_widths = legacy_planner.sizer.size(floorplan, topology)
    resized_widths = legacy_planner.rules.legalize_widths(initial_widths * 1.25)

    legacy_times = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        network = builder.build(floorplan, topology, resized_widths)
        network.compile().reduced_matrix
        legacy_times.append(time.perf_counter() - start)

    start = time.perf_counter()
    base = builder.build_compiled(floorplan, topology, initial_widths)
    base.reduced_matrix
    first_build_time = time.perf_counter() - start

    compiled_times = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        builder.resize_compiled(base, topology, resized_widths).reduced_matrix
        compiled_times.append(time.perf_counter() - start)

    legacy_seconds = float(np.mean(legacy_times))
    compiled_seconds = float(np.mean(compiled_times))
    speedup = legacy_seconds / compiled_seconds

    # Solve side of one analyse—resize iteration.  A planner resize
    # touches the violating subset of lines, so upsize one decile and
    # compare the resized grid served by a low-rank update of the base
    # factors against a fresh factorization of the resized matrix.
    partial_widths = np.asarray(initial_widths, dtype=float).copy()
    upsized = legacy_planner.rules.legalize_widths(partial_widths * 1.3)
    downsized = legacy_planner.rules.legalize_widths(partial_widths * 0.7)
    # Lines already at the legal maximum cannot move up; fall back to a
    # downsize so the update always has non-zero rank.
    target = upsized if np.any(upsized != partial_widths) else downsized
    movable = np.flatnonzero(target != partial_widths)
    chosen = movable[: max(1, min(movable.size, partial_widths.size // 10))]
    num_resized_lines = int(chosen.size)
    partial_widths[chosen] = target[chosen]
    resized = builder.resize_compiled(base, topology, partial_widths)
    update_rank = int(resized.update_columns(resized.update_indices)[1].size)

    fresh_engine = BatchedAnalysisEngine(incremental_updates=False)
    fresh_times = []
    for _ in range(REPEATS):
        fresh_engine.clear_cache()
        fresh_engine.analyze(base)  # prime the base factors (untimed)
        start = time.perf_counter()
        fresh_voltages = fresh_engine.solve_voltages(resized)
        fresh_times.append(time.perf_counter() - start)

    incremental_engine = BatchedAnalysisEngine()
    incremental_times = []
    for _ in range(REPEATS):
        incremental_engine.clear_cache()
        incremental_engine.analyze(base)
        start = time.perf_counter()
        incremental_voltages = incremental_engine.solve_voltages(resized)
        incremental_times.append(time.perf_counter() - start)

    cache = incremental_engine.cache_info()
    assert cache.updates == REPEATS, cache
    assert cache.update_fallbacks == 0, cache
    max_voltage_error = float(np.max(np.abs(incremental_voltages - fresh_voltages)))
    assert max_voltage_error <= VOLTAGE_TOLERANCE, (
        f"incremental update diverged from fresh factors by {max_voltage_error}"
    )
    fresh_solve_seconds = float(np.mean(fresh_times))
    incremental_solve_seconds = float(np.mean(incremental_times))
    incremental_speedup = fresh_solve_seconds / incremental_solve_seconds

    record = {
        "benchmark": name,
        "scale": bench_scale(),
        "smoke": not full_scale(),
        "grid_statistics": dict(
            zip(
                ("num_nodes", "num_resistors", "num_sources", "num_loads"),
                legacy_plan.network.statistics().as_row(),
            )
        ),
        "num_iterations": legacy_plan.num_iterations,
        "converged": legacy_plan.converged,
        "legacy_iteration_build_seconds": legacy_seconds,
        "compiled_iteration_build_seconds": compiled_seconds,
        "compiled_first_build_seconds": first_build_time,
        "iteration_build_speedup": speedup,
        "solver_backend": cache.backend,
        "incremental_update_rank": update_rank,
        "resized_lines": num_resized_lines,
        "fresh_iteration_solve_seconds": fresh_solve_seconds,
        "incremental_iteration_solve_seconds": incremental_solve_seconds,
        "refactorization_seconds_saved_per_iteration": (
            fresh_solve_seconds - incremental_solve_seconds
        ),
        "incremental_speedup": incremental_speedup,
        "incremental_max_voltage_error": max_voltage_error,
        "incremental_updates": cache.updates,
        "incremental_update_fallbacks": cache.update_fallbacks,
        "legacy_history": _iteration_history(legacy_plan),
        "compiled_history": _iteration_history(fast_plan),
        "legacy_plan_total_seconds": legacy_plan.total_time,
        "compiled_plan_total_seconds": fast_plan.total_time,
    }
    print()
    print(
        format_key_values(
            {
                "benchmark": name,
                "iterations": legacy_plan.num_iterations,
                "legacy build+compile (s)": round(legacy_seconds, 5),
                "compiled resize (s)": round(compiled_seconds, 5),
                "compiled first build (s)": round(first_build_time, 5),
                "per-iteration speedup": round(speedup, 2),
                "solver backend": cache.backend,
                "update rank": update_rank,
                "fresh factor+solve (s)": round(fresh_solve_seconds, 5),
                "incremental solve (s)": round(incremental_solve_seconds, 5),
                "incremental speedup": round(incremental_speedup, 2),
                "max voltage error": max_voltage_error,
                "plan total legacy (s)": round(legacy_plan.total_time, 4),
                "plan total compiled (s)": round(fast_plan.total_time, 4),
            },
            title=f"rebuild loop vs compiled planner iteration ({name})",
        )
    )
    with open(results_dir / "bench_planner_iteration.json", "w") as handle:
        json.dump(record, handle, indent=2)

    if full_scale():
        assert speedup >= MIN_SPEEDUP, (
            f"compiled planner iteration speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP}x bar"
        )
        assert incremental_speedup >= MIN_SPEEDUP, (
            f"incremental-update iteration speedup {incremental_speedup:.2f}x "
            f"below the {MIN_SPEEDUP}x bar"
        )
