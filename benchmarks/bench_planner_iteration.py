"""Planner-iteration micro-benchmark: rebuild loop vs compiled fast path.

Each iteration of the conventional analyse-and-resize flow used to rebuild
the :class:`PowerGridNetwork` object graph (per-element dict inserts) and
re-derive a :class:`CompiledGrid` from scratch.  The rebuild-free loop
builds the compiled arrays once (``GridBuilder.build_compiled``) and then
only rewrites the stripe conductances per resize iteration
(``GridBuilder.resize_compiled``), reusing the frozen topology, index maps
and COO→CSR sparsity pattern.

This bench runs both planner paths on the largest shipped benchmark grid,
verifies bit-identical convergence (iterations, final widths, worst IR
drop), times the per-iteration (build + compile) step of each path and
emits a JSON speedup record mirroring ``bench_engine_batched_solve.py``.
The acceptance bar is a ≥ 3x per-iteration construction speedup at full
grid scale.

Environment variables:
    REPRO_BENCH_PLANNER_GRID: Benchmark to plan (default: the largest grid).
    REPRO_BENCH_SCALE: Global grid scale (tiny-grid CI smoke gate).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
from conftest import bench_scale, full_scale

from repro.core import format_key_values
from repro.design import ConventionalPowerPlanner
from repro.grid import GridBuilder, SyntheticIBMSuite

MIN_SPEEDUP = 3.0
REPEATS = 3


def target_benchmark_name(suite: SyntheticIBMSuite) -> str:
    """Benchmark to plan: REPRO_BENCH_PLANNER_GRID or the largest grid."""
    override = os.environ.get("REPRO_BENCH_PLANNER_GRID", "").strip()
    if override:
        return override
    return max(suite.names(), key=lambda name: suite.config(name).approx_nodes)


def _iteration_history(plan) -> list[dict]:
    return [
        {
            "index": iteration.index,
            "worst_ir_drop": iteration.worst_ir_drop,
            "em_violations": iteration.em_violations,
            "lines_resized": iteration.lines_resized,
            "build_time": iteration.build_time,
            "analysis_time": iteration.analysis_time,
        }
        for iteration in plan.iterations
    ]


def test_planner_iteration_speedup(benchmark, results_dir):
    """Legacy rebuild vs compiled construction, identical convergence."""
    suite = SyntheticIBMSuite(scale=bench_scale())
    name = target_benchmark_name(suite)
    bench = suite.load(name)
    technology = bench.technology
    floorplan, topology = bench.floorplan, bench.topology

    legacy_planner = ConventionalPowerPlanner(technology, use_compiled_loop=False)
    fast_planner = ConventionalPowerPlanner(technology, use_compiled_loop=True)
    legacy_plan = legacy_planner.plan(floorplan, topology)
    fast_plan = benchmark.pedantic(
        lambda: fast_planner.plan(floorplan, topology), rounds=1, iterations=1
    )

    # Convergence must be identical between the two loops.
    assert fast_plan.num_iterations == legacy_plan.num_iterations
    assert fast_plan.converged == legacy_plan.converged
    assert np.array_equal(fast_plan.widths, legacy_plan.widths)
    assert abs(
        fast_plan.ir_result.worst_ir_drop - legacy_plan.ir_result.worst_ir_drop
    ) <= 1e-9
    for legacy_it, fast_it in zip(legacy_plan.iterations, fast_plan.iterations):
        assert fast_it.lines_resized == legacy_it.lines_resized
        assert abs(fast_it.worst_ir_drop - legacy_it.worst_ir_drop) <= 1e-9

    # Per-iteration construction cost: what one resize round pays before the
    # solve.  Legacy: object-graph build + compile + matrix assembly.
    # Compiled: conductance rewrite + pattern-based matrix refresh.
    builder = GridBuilder(technology)
    initial_widths = legacy_planner.sizer.size(floorplan, topology)
    resized_widths = legacy_planner.rules.legalize_widths(initial_widths * 1.25)

    legacy_times = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        network = builder.build(floorplan, topology, resized_widths)
        network.compile().reduced_matrix
        legacy_times.append(time.perf_counter() - start)

    start = time.perf_counter()
    base = builder.build_compiled(floorplan, topology, initial_widths)
    base.reduced_matrix
    first_build_time = time.perf_counter() - start

    compiled_times = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        builder.resize_compiled(base, topology, resized_widths).reduced_matrix
        compiled_times.append(time.perf_counter() - start)

    legacy_seconds = float(np.mean(legacy_times))
    compiled_seconds = float(np.mean(compiled_times))
    speedup = legacy_seconds / compiled_seconds

    record = {
        "benchmark": name,
        "scale": bench_scale(),
        "grid_statistics": dict(
            zip(
                ("num_nodes", "num_resistors", "num_sources", "num_loads"),
                legacy_plan.network.statistics().as_row(),
            )
        ),
        "num_iterations": legacy_plan.num_iterations,
        "converged": legacy_plan.converged,
        "legacy_iteration_build_seconds": legacy_seconds,
        "compiled_iteration_build_seconds": compiled_seconds,
        "compiled_first_build_seconds": first_build_time,
        "iteration_build_speedup": speedup,
        "legacy_history": _iteration_history(legacy_plan),
        "compiled_history": _iteration_history(fast_plan),
        "legacy_plan_total_seconds": legacy_plan.total_time,
        "compiled_plan_total_seconds": fast_plan.total_time,
    }
    print()
    print(
        format_key_values(
            {
                "benchmark": name,
                "iterations": legacy_plan.num_iterations,
                "legacy build+compile (s)": round(legacy_seconds, 5),
                "compiled resize (s)": round(compiled_seconds, 5),
                "compiled first build (s)": round(first_build_time, 5),
                "per-iteration speedup": round(speedup, 2),
                "plan total legacy (s)": round(legacy_plan.total_time, 4),
                "plan total compiled (s)": round(fast_plan.total_time, 4),
            },
            title=f"rebuild loop vs compiled planner iteration ({name})",
        )
    )
    with open(results_dir / "bench_planner_iteration.json", "w") as handle:
        json.dump(record, handle, indent=2)

    if full_scale():
        assert speedup >= MIN_SPEEDUP, (
            f"compiled planner iteration speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP}x bar"
        )
